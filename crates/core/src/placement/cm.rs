//! The CloudMirror placement algorithm (Algorithm 1 + §4.5 extensions).

use crate::cut::CutModel;
use crate::model::{Tag, TierId};
use crate::placement::{
    need_is_zero, need_total, per_slot_avail_kbps, place_incremental_replace, restore_need,
    search_and_place_traced, search_and_place_with, wcs_cap, CmConfig, DemandPredictor, Deployed,
    HaPolicy, PlacementTrace, Placer, RejectReason, SearchStrategy,
};
use crate::reserve::{PlacementEntry, TenantState};
use crate::txn::ReservationTxn;
use cm_topology::{NodeId, Topology};
use std::sync::Arc;

/// Reusable buffer pools for the placement hot path. Every temporary the
/// recursive `Alloc`/`Colocate`/`Balance` machinery needs — child
/// orderings, `need` vectors, subset-sum shortlists, incident-edge
/// scratch — is drawn from (and returned to) these free lists, so
/// steady-state admission performs no heap allocation of its own.
#[derive(Debug, Clone, Default)]
struct Scratch {
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    nodes: Vec<Vec<NodeId>>,
    idxs: Vec<Vec<usize>>,
    pairs: Vec<Vec<(usize, u32)>>,
}

macro_rules! pool {
    ($get:ident, $put:ident, $field:ident, $t:ty) => {
        fn $get(&mut self) -> Vec<$t> {
            self.$field.pop().unwrap_or_default()
        }
        fn $put(&mut self, mut v: Vec<$t>) {
            v.clear();
            self.$field.push(v);
        }
    };
}

impl Scratch {
    pool!(u32s, put_u32s, u32s, u32);
    pool!(u64s, put_u64s, u64s, u64);
    pool!(nodes, put_nodes, nodes, NodeId);
    pool!(idxs, put_idxs, idxs, usize);
    pool!(pairs, put_pairs, pairs, (usize, u32));
}

/// Physical-state key of a balance candidate (free slots, total slots,
/// uplink capacity, uplink availability) — equal keys on untouched
/// children imply identical greedy fills.
type FillKey = (u64, u64, Option<(u64, u64)>, Option<(u64, u64)>);

/// Collect the 4 smallest nodes of `nodes` under `key` into `out`, in key
/// order — equivalent to `sort_by_key(key).take(4)` for total-order keys,
/// without sorting or allocating.
fn top4_by<K: Ord + Copy>(nodes: &[NodeId], out: &mut Vec<NodeId>, key: impl Fn(NodeId) -> K) {
    let mut best: [Option<(K, NodeId)>; 4] = [None; 4];
    for &c in nodes {
        let k = key(c);
        let mut pos = 4;
        for (i, b) in best.iter().enumerate() {
            match b {
                None => {
                    pos = i;
                    break;
                }
                Some((bk, _)) if k < *bk => {
                    pos = i;
                    break;
                }
                _ => {}
            }
        }
        if pos < 4 {
            for j in (pos + 1..4).rev() {
                best[j] = best[j - 1];
            }
            best[pos] = Some((k, c));
        }
    }
    out.extend(best.iter().flatten().map(|&(_, c)| c));
}

/// The CloudMirror VM scheduler.
///
/// A placer is stateful only through its [`DemandPredictor`] (used by
/// opportunistic HA) and its reusable scratch pools; placements themselves
/// live in the returned [`TenantState`]s. See the
/// [module docs](crate::placement) for the algorithm.
#[derive(Debug, Clone)]
pub struct CmPlacer {
    cfg: CmConfig,
    label: &'static str,
    predictor: DemandPredictor,
    search: SearchStrategy,
    scratch: Scratch,
}

impl Default for CmPlacer {
    fn default() -> Self {
        CmPlacer::new(CmConfig::cm())
    }
}

impl CmPlacer {
    /// Create a placer with the given configuration, labeled with the
    /// configuration's canonical name ([`CmConfig::label`]).
    pub fn new(cfg: CmConfig) -> Self {
        Self::named(cfg, cfg.label())
    }

    /// Create a placer with an explicit display name (used for the HA and
    /// ablation variants in result tables).
    pub fn named(cfg: CmConfig, label: &'static str) -> Self {
        CmPlacer {
            cfg,
            label,
            predictor: DemandPredictor::default(),
            search: SearchStrategy::default(),
            scratch: Scratch::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CmConfig {
        &self.cfg
    }

    /// Select the `FindLowestSubtree` implementation. Production placers
    /// keep the default descend search; the linear reference exists so
    /// equivalence tests and before/after benchmarks can run the identical
    /// algorithm on the pre-descend scan.
    pub fn set_search_strategy(&mut self, search: SearchStrategy) {
        self.search = search;
    }

    /// Builder-style [`CmPlacer::set_search_strategy`].
    pub fn with_search_strategy(mut self, search: SearchStrategy) -> Self {
        self.search = search;
        self
    }

    /// Deploy a TAG tenant (`AllocTenant` in Algorithm 1).
    ///
    /// On success the returned [`TenantState`] holds the placement and all
    /// reservations; release it with [`TenantState::clear`]. On rejection
    /// the topology is left exactly as before the call. (The [`Placer`]
    /// trait wraps this into a model-erased [`Deployed`].)
    pub fn place_tag(
        &mut self,
        topo: &mut Topology,
        tag: &Tag,
    ) -> Result<TenantState<Tag>, RejectReason> {
        self.place_tag_shared(topo, &Arc::new(tag.clone()))
    }

    /// [`CmPlacer::place_tag`] for an already-shared model: the tenant's
    /// TAG is never deep-cloned, the state just keeps a handle.
    pub fn place_tag_shared(
        &mut self,
        topo: &mut Topology,
        tag: &Arc<Tag>,
    ) -> Result<TenantState<Tag>, RejectReason> {
        let demand_mix = self.predictor.observe(tag.avg_per_vm_demand_kbps());
        self.place_tag_with_mix(topo, tag, demand_mix, None)
    }

    /// The placement body shared by the serial path (which *observes* the
    /// arrival into the predictor first) and the concurrent engine's
    /// speculation path (which *peeks* the same value without advancing
    /// predictor state, and passes a trace). The two produce identical
    /// decisions for identical topologies by construction.
    fn place_tag_with_mix(
        &mut self,
        topo: &mut Topology,
        tag: &Arc<Tag>,
        demand_mix: f64,
        trace: Option<&mut PlacementTrace>,
    ) -> Result<TenantState<Tag>, RejectReason> {
        let shared = Arc::clone(tag);
        let tag: &Tag = tag;
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut total_need = scratch.u32s();
        total_need.extend((0..tag.num_tiers()).map(|t| CutModel::tier_size(tag, t)));
        let total_vms = need_total(&total_need);
        let ext_demand = tag.cut_kbps(&total_need);
        let spread = self.spread_unit_prices(tag, &mut scratch);
        let mut trace = trace;
        let (start, reads_global) = self.start_level(topo, tag, demand_mix);
        if reads_global {
            // The decision depended on whole-topology aggregates, so the
            // read-set evidence cannot be confined to attempted pods.
            if let Some(t) = trace.as_deref_mut() {
                t.mark_unknown();
            }
        }
        let start = start as usize;

        let mut state = TenantState::new_shared(shared);
        let res = search_and_place_traced(
            topo,
            &mut state,
            total_vms,
            ext_demand,
            start,
            self.search,
            trace,
            |txn, st| {
                let mut need = scratch.u32s();
                need.extend_from_slice(&total_need);
                self.alloc(txn, tag, &mut need, st, demand_mix, &spread, &mut scratch);
                let done = need_is_zero(&need);
                scratch.put_u32s(need);
                done
            },
        );
        scratch.put_u32s(total_need);
        scratch.put_u64s(spread);
        self.scratch = scratch;
        res?;
        Ok(state)
    }

    /// The spread price of one VM of each tier (the cut it costs alone in
    /// its own subtree) — the baseline every colocation saving is measured
    /// against. Depends only on the model, so it is computed once per
    /// deployment and threaded through the recursion.
    fn spread_unit_prices(&self, tag: &Tag, scratch: &mut Scratch) -> Vec<u64> {
        let n = tag.num_tiers();
        let mut spread = scratch.u64s();
        let mut unit = scratch.u32s();
        unit.resize(n, 0);
        for t in 0..n {
            unit[t] = 1;
            let s: u64 = tag
                .incident_edges(TierId(t as u16))
                .iter()
                .map(|&ei| tag.edge_crossing_idx(ei as usize, &unit))
                .sum();
            spread.push(s);
            unit[t] = 0;
        }
        scratch.put_u32s(unit);
        spread
    }

    /// Resize one tier of a *live* deployment to `new_size` VMs — the
    /// auto-scaling operation the paper's §6 plans for ("large-scale
    /// variations in load will trigger tenants to scale up or down ...
    /// which is flexibly handled by the TAG model").
    ///
    /// Per-VM guarantees stay fixed; only the tier's size changes. Growing
    /// reprices every existing reservation under the enlarged model (the
    /// `min()` caps of Eq. 1 widen) and then places the new VMs with the
    /// normal `Alloc` machinery; shrinking removes VMs from the
    /// least-populated servers first and reprices afterwards. On any
    /// failure the deployment is left exactly as before and an error is
    /// returned.
    pub fn scale_tier(
        &mut self,
        topo: &mut Topology,
        state: &mut TenantState<Tag>,
        tier: TierId,
        new_size: u32,
    ) -> Result<(), RejectReason> {
        let old_tag = state.model_arc();
        if new_size == old_tag.tier(tier).size {
            return Ok(());
        }
        self.scale_tier_shared(
            topo,
            state,
            tier,
            &Arc::new(old_tag.resized(tier, new_size)),
        )
    }

    /// [`CmPlacer::scale_tier`] with the resized TAG supplied by the caller
    /// (the lifecycle controller already holds it): identical behaviour,
    /// no second `resized` copy. `new_tag` must equal the current model
    /// with exactly `tier` resized.
    pub fn scale_tier_shared(
        &mut self,
        topo: &mut Topology,
        state: &mut TenantState<Tag>,
        tier: TierId,
        new_tag: &Arc<Tag>,
    ) -> Result<(), RejectReason> {
        let old_tag = state.model_arc();
        let old_size = old_tag.tier(tier).size;
        let new_size = new_tag.tier(tier).size;
        if new_size == old_size {
            return Ok(());
        }
        let new_tag = Arc::clone(new_tag);
        let demand_mix = self.predictor.observe(new_tag.avg_per_vm_demand_kbps());
        let mut scratch = std::mem::take(&mut self.scratch);
        let res = if new_size > old_size {
            self.grow_tier(
                topo,
                state,
                tier,
                &old_tag,
                &new_tag,
                demand_mix,
                &mut scratch,
            )
        } else {
            self.shrink_tier(topo, state, tier, &new_tag)
        };
        self.scratch = scratch;
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn grow_tier(
        &self,
        topo: &mut Topology,
        state: &mut TenantState<Tag>,
        tier: TierId,
        old_tag: &Arc<Tag>,
        new_tag: &Arc<Tag>,
        demand_mix: f64,
        scratch: &mut Scratch,
    ) -> Result<(), RejectReason> {
        let delta = new_tag.tier(tier).size - old_tag.tier(tier).size;
        // Reprice existing reservations under the grown model first: with a
        // larger receiver/sender population, Eq. 1's caps rise on links that
        // hold part of the tier's peers.
        if state.replace_model(topo, Arc::clone(new_tag)).is_err() {
            return Err(RejectReason::InsufficientBandwidth);
        }
        let grown: &Tag = new_tag;
        let spread = self.spread_unit_prices(grown, scratch);
        let mut template = scratch.u32s();
        template.resize(grown.num_tiers(), 0);
        template[tier.index()] = delta;
        let res = search_and_place_with(
            topo,
            state,
            delta as u64,
            (0, 0),
            0,
            self.search,
            |txn, st| {
                let mut need = scratch.u32s();
                need.extend_from_slice(&template);
                self.alloc(txn, grown, &mut need, st, demand_mix, &spread, scratch);
                let done = need_is_zero(&need);
                scratch.put_u32s(need);
                done
            },
        );
        scratch.put_u32s(template);
        scratch.put_u64s(spread);
        if res.is_err() {
            // Could not place the delta anywhere: restore the old model
            // (its prices are the ones currently reserved, so this cannot
            // fail).
            state
                .replace_model(topo, Arc::clone(old_tag))
                .expect("restoring the pre-growth model frees capacity"); // cm-analyze: allow(no-unwrap-in-hot-path) -- rollback to the exact reserved prices cannot exceed capacity
        }
        res
    }

    fn shrink_tier(
        &self,
        topo: &mut Topology,
        state: &mut TenantState<Tag>,
        tier: TierId,
        new_tag: &Arc<Tag>,
    ) -> Result<(), RejectReason> {
        let new_size = new_tag.tier(tier).size;
        let delta = state.model().tier(tier).size - new_size;
        let mut placement: Vec<(NodeId, u32)> = state
            .placement(topo)
            .into_iter()
            .filter_map(|(s, c)| {
                let k = c[tier.index()];
                (k > 0).then_some((s, k))
            })
            .collect();
        let removal = match self.cfg.ha {
            // Guaranteed HA: the shrink must leave the tier within the
            // Eq. 7 cap of its NEW size in every fault domain, so vacate
            // the fullest domains first (water-draining minimizes the
            // final max). A shrink that cannot reach the cap without
            // moving VMs is rejected; the caller can migrate instead.
            HaPolicy::Guaranteed { rwcs, laa_level } => Self::shrink_removal_capped(
                topo,
                &placement,
                tier,
                delta,
                wcs_cap(new_size, rwcs),
                laa_level,
            )?,
            // No HA guarantee: remove from the least-populated servers
            // first, so large colocated blocks (the bandwidth savers)
            // survive.
            HaPolicy::None | HaPolicy::Opportunistic { .. } => {
                placement.sort_by_key(|&(s, k)| (k, s));
                let mut removal: Vec<PlacementEntry> = Vec::new();
                let mut left = delta;
                for (server, k) in placement {
                    if left == 0 {
                        break;
                    }
                    let take = k.min(left);
                    removal.push(PlacementEntry {
                        server,
                        tier: tier.index(),
                        count: take,
                    });
                    left -= take;
                }
                assert_eq!(left, 0, "deployment holds fewer VMs than its model");
                removal
            }
        };
        let mut txn = ReservationTxn::begin(topo, state);
        for e in &removal {
            txn.unplace(e.server, e.tier, e.count);
        }
        // Re-sync the affected links bottom-up — still under the OLD model
        // (counts changed; note that removing VMs can RAISE a hose price
        // when the inside count drops below N/2, so this can fail). Any
        // failure drops the uncommitted transaction, restoring the VMs and
        // reservations exactly.
        let mut affected: Vec<NodeId> = Vec::new();
        for e in &removal {
            for n in txn.topo().path_to_root(e.server) {
                if !affected.contains(&n) {
                    affected.push(n);
                }
            }
        }
        affected.sort_by_key(|&n| (txn.topo().level(n), n));
        for &n in &affected {
            if txn.sync_uplink(n).is_err() {
                return Err(RejectReason::InsufficientBandwidth);
            }
        }
        if txn.replace_model(Arc::clone(new_tag)).is_err() {
            return Err(RejectReason::InsufficientBandwidth);
        }
        txn.commit();
        Ok(())
    }

    /// Water-drain removal plan for a Guaranteed-HA shrink: remove `delta`
    /// VMs of `tier` one at a time from whichever `laa_level` fault domain
    /// currently holds the most (ties to the smaller domain id; inside a
    /// domain, the least-populated server goes first so colocated blocks
    /// survive). Draining the fullest domains minimizes the final
    /// per-domain maximum, so if the result still exceeds `cap` no
    /// removal-only shrink can satisfy Eq. 7 and the operation is rejected
    /// (a `migrate` can redistribute instead).
    fn shrink_removal_capped(
        topo: &Topology,
        placement: &[(NodeId, u32)],
        tier: TierId,
        delta: u32,
        cap: u32,
        laa_level: u8,
    ) -> Result<Vec<PlacementEntry>, RejectReason> {
        let domain_of = |server: NodeId| -> NodeId {
            let mut n = server;
            while topo.level(n) < laa_level {
                n = topo.parent(n).expect("LAA level is below the root"); // cm-analyze: allow(no-unwrap-in-hot-path) -- loop guard stops below laa_level, so a parent exists
            }
            n
        };
        // (domain, server, remaining, removed), servers sorted by
        // (count, id) for the within-domain order.
        let mut rows: Vec<(NodeId, NodeId, u32, u32)> = placement
            .iter()
            .map(|&(s, k)| (domain_of(s), s, k, 0u32))
            .collect();
        rows.sort_by_key(|&(d, s, k, _)| (d, k, s));
        // Per-domain totals, maintained incrementally as VMs drain.
        let mut totals: std::collections::BTreeMap<NodeId, u32> = Default::default();
        for &(d, _, k, _) in &rows {
            *totals.entry(d).or_insert(0) += k;
        }
        for _ in 0..delta {
            let (&max_domain, _) = totals
                .iter()
                .max_by_key(|&(&d, &t)| (t, std::cmp::Reverse(d)))
                .expect("deployment holds fewer VMs than its model"); // cm-analyze: allow(no-unwrap-in-hot-path) -- delta <= placed VM count is checked by the caller
            let row = rows
                .iter_mut()
                .find(|r| r.0 == max_domain && r.2 > 0)
                .expect("the fullest domain has a populated server"); // cm-analyze: allow(no-unwrap-in-hot-path) -- totals only tracks domains with rows, and max total > 0
            row.2 -= 1;
            row.3 += 1;
            *totals.get_mut(&max_domain).expect("domain tracked") -= 1; // cm-analyze: allow(no-unwrap-in-hot-path) -- key came from iterating this map
        }
        if totals.values().any(|&t| t > cap) {
            return Err(RejectReason::InsufficientBandwidth);
        }
        Ok(rows
            .into_iter()
            .filter(|&(_, _, _, removed)| removed > 0)
            .map(|(_, server, _, removed)| PlacementEntry {
                server,
                tier: tier.index(),
                count: removed,
            })
            .collect())
    }

    /// `Alloc(g, st)`: place as much of `need` as possible under `st`,
    /// staged through the transaction; `need` is decremented for every
    /// placed VM. The reservation on `st`'s own uplink is synced before
    /// returning; if that fails, everything this call staged is rolled back
    /// (with `need` restored) and 0 is returned. Otherwise returns the
    /// number of VMs this call placed.
    #[allow(clippy::too_many_arguments)]
    fn alloc(
        &self,
        txn: &mut ReservationTxn<'_, Tag>,
        tag: &Tag,
        need: &mut [u32],
        st: NodeId,
        demand_mix: f64,
        spread: &[u64],
        scratch: &mut Scratch,
    ) -> u64 {
        let sp = txn.savepoint();
        let before = need_total(need);
        if txn.topo().is_server(st) {
            self.alloc_on_server(txn, tag, need, st, scratch);
        } else {
            if self.cfg.colocate
                && self.coloc_feasible(txn.topo(), txn.state(), tag, need, st, demand_mix, scratch)
            {
                self.colocate(txn, tag, need, st, demand_mix, spread, scratch);
            }
            if !need_is_zero(need) {
                if self.cfg.balance {
                    self.balance(txn, tag, need, st, demand_mix, spread, scratch);
                } else {
                    self.first_fit(txn, tag, need, st, demand_mix, spread, scratch);
                }
            }
        }
        let placed = before - need_total(need);
        if placed > 0 && txn.sync_uplink(st).is_err() {
            let undone = txn.rollback_to(sp);
            restore_need(&undone, need);
            return 0;
        }
        placed
    }

    /// Server-level allocation: fill free slots with the highest-demand
    /// tiers first (subject to HA headroom).
    fn alloc_on_server(
        &self,
        txn: &mut ReservationTxn<'_, Tag>,
        tag: &Tag,
        need: &mut [u32],
        server: NodeId,
        scratch: &mut Scratch,
    ) {
        let mut left = txn.topo().slots_free(server);
        if left == 0 {
            return;
        }
        let mut order = scratch.idxs();
        order.extend((0..need.len()).filter(|&t| need[t] > 0));
        order.sort_by_key(|&t| std::cmp::Reverse(tag.per_vm_demand(TierId(t as u16))));
        // Chunks are batched into a single staged placement: one slot
        // allocation, one subtree-count path walk (the per-tier Eq. 7
        // headroom is unaffected, each tier appears at most once).
        let mut chunks = scratch.pairs();
        for &t in &order {
            if left == 0 {
                break;
            }
            let head = self.ha_headroom(txn.topo(), txn.state(), tag, server, t);
            let k = need[t].min(left).min(head);
            if k == 0 {
                continue;
            }
            chunks.push((t, k));
            need[t] -= k;
            left -= k;
        }
        txn.place_many(server, &chunks)
            .expect("slot count was checked"); // cm-analyze: allow(no-unwrap-in-hot-path) -- chunks sum to at most the free slots counted above
        scratch.put_pairs(chunks);
        scratch.put_idxs(order);
    }

    // ------------------------------------------------------------------
    // Colocate
    // ------------------------------------------------------------------

    /// Cheap feasibility gate for `Colocate` (Algorithm 1 line 16): the
    /// Eq. 2/6 size conditions can only hold if more than half of some
    /// hose tier or trunk endpoint can land under a single child, within
    /// HA headroom; under opportunistic HA, colocation must additionally be
    /// *desirable* (§4.5).
    #[allow(clippy::too_many_arguments)]
    fn coloc_feasible(
        &self,
        topo: &Topology,
        state: &TenantState<Tag>,
        tag: &Tag,
        need: &[u32],
        st: NodeId,
        demand_mix: f64,
        scratch: &mut Scratch,
    ) -> bool {
        if matches!(self.cfg.ha, HaPolicy::Opportunistic { .. })
            && !self.saving_desirable(topo, st, demand_mix)
        {
            return false;
        }
        // The Eq. 2/6 gate asks: does some tier with an internal edge get
        // more than half its VMs under a single child? The per-tier
        // potential is a max over children, and the condition is monotone
        // in it — so scan children and return on the first tier that
        // clears its threshold (same boolean as materializing the full
        // per-tier max first).
        let mut trigger = scratch.u64s();
        trigger.extend(need.iter().map(|_| u64::MAX));
        for e in tag.edges() {
            let fi = e.from.index();
            let ti = e.to.index();
            if e.is_self_loop() {
                trigger[fi] = tag.tier(e.from).size as u64;
            } else if !tag.tier(e.from).external && !tag.tier(e.to).external {
                trigger[fi] = trigger[fi].min(tag.tier(e.from).size as u64);
                trigger[ti] = trigger[ti].min(tag.tier(e.to).size as u64);
            }
        }
        let ha_capped = matches!(self.cfg.ha, HaPolicy::Guaranteed { .. });
        let mut feasible = false;
        'scan: for child in topo.children(st) {
            let slots = topo.subtree_slots_free(child);
            let inside = state.inside_counts_ref(child);
            for (t, &n) in need.iter().enumerate() {
                if n == 0 || trigger[t] == u64::MAX {
                    continue;
                }
                let head = if ha_capped {
                    self.ha_headroom(topo, state, tag, child, t) as u64
                } else {
                    u64::MAX
                };
                let existing = inside.map_or(0, |c| c[t]) as u64;
                let pot = existing + (n as u64).min(slots).min(head);
                if 2 * pot > trigger[t] {
                    feasible = true;
                    break 'scan;
                }
            }
        }
        scratch.put_u64s(trigger);
        feasible
    }

    /// `Colocate(g, st)`: repeatedly pick a verified bandwidth-saving group
    /// of tiers and recurse into the chosen child.
    #[allow(clippy::too_many_arguments)]
    fn colocate(
        &self,
        txn: &mut ReservationTxn<'_, Tag>,
        tag: &Tag,
        need: &mut [u32],
        st: NodeId,
        demand_mix: f64,
        spread: &[u64],
        scratch: &mut Scratch,
    ) {
        let mut excluded = scratch.nodes();
        // Children that produced no saving group for the current remainder;
        // they can only become attractive again once they receive VMs (which
        // removes them from the set below).
        let mut no_group = scratch.nodes();
        loop {
            let found = self.find_tiers_to_coloc(
                txn.topo(),
                txn.state(),
                tag,
                need,
                st,
                &excluded,
                &mut no_group,
                spread,
                scratch,
            );
            let Some((gsub, child)) = found else { break };
            debug_assert!(gsub.iter().zip(need.iter()).all(|(&g, &n)| g <= n));
            for (t, &g) in gsub.iter().enumerate() {
                need[t] -= g;
            }
            let mut sub = gsub;
            let placed = self.alloc(txn, tag, &mut sub, child, demand_mix, spread, scratch);
            for (t, &s) in sub.iter().enumerate() {
                need[t] += s; // return the unplaced remainder
            }
            scratch.put_u32s(sub);
            if placed == 0 {
                excluded.push(child);
            } else if let Some(p) = no_group.iter().position(|&n| n == child) {
                no_group.swap_remove(p);
            }
            // With nothing left to place, the next find would collect and
            // scan children only to come back empty (`hi` is empty once
            // every `need` entry is zero) — skip it.
            if need_is_zero(need) {
                break;
            }
        }
        scratch.put_nodes(excluded);
        scratch.put_nodes(no_group);
    }

    /// `FindTiersToColoc`: build the best verified-saving colocation group
    /// for some child of `st`.
    ///
    /// Low-bandwidth tiers (per-VM demand at or below the children's
    /// available bandwidth per free slot) are excluded — they are left for
    /// `Balance` to pair with high-bandwidth VMs (§4.4, Fig. 6). Groups are
    /// seeded by the single tier or trunk-edge pair with the largest exact
    /// saving and grown greedily while the marginal saving stays positive.
    #[allow(clippy::too_many_arguments)]
    fn find_tiers_to_coloc(
        &self,
        topo: &Topology,
        state: &TenantState<Tag>,
        tag: &Tag,
        need: &[u32],
        st: NodeId,
        excluded: &[NodeId],
        no_group: &mut Vec<NodeId>,
        spread: &[u64],
        scratch: &mut Scratch,
    ) -> Option<(Vec<u32>, NodeId)> {
        let mut children = scratch.nodes();
        children.extend(topo.children(st).filter(|c| {
            !excluded.contains(c) && !no_group.contains(c) && topo.subtree_slots_free(*c) > 0
        }));
        if children.is_empty() {
            scratch.put_nodes(children);
            return None;
        }

        // Low-bandwidth exclusion threshold (computed over all live
        // children, not the shortlist, to keep the classification stable).
        let thr = per_slot_avail_kbps(topo, children.iter().copied()).unwrap_or(0.0);
        let mut hi = scratch.idxs();
        hi.extend(
            (0..need.len())
                .filter(|&t| need[t] > 0 && tag.per_vm_demand(TierId(t as u16)) as f64 > thr),
        );
        if hi.is_empty() {
            scratch.put_nodes(children);
            scratch.put_idxs(hi);
            return None;
        }

        // `build_group` is a pure function of (need, hi, child free slots,
        // the tenant's existing counts under the child, HA headroom). For
        // children this tenant has not touched and no Eq. 7 cap applies to,
        // it depends on the free-slot count alone — so after one such child
        // fails, siblings with the same free count are skipped outright.
        // On a fresh rack that collapses the failing scan from
        // O(children × probes) to a single probe.
        let memo_allowed = !matches!(self.cfg.ha, HaPolicy::Guaranteed { .. });
        // Free-slot counts beyond every cap `build_group` applies (`cap ≤
        // need_total`, and the trunk-seed halving ≤ `⌈slots/2⌉`) behave
        // identically, so the memo key saturates at twice the remaining
        // demand: one probe covers every untouched child that large.
        let slot_sat = 2 * need_total(need);
        let mut failed_slots: Option<u64> = None;
        let mut found: Option<(Vec<u32>, NodeId)> = None;
        // Children are visited in (most free slots, id) order, selected
        // lazily: the first child usually yields a group, so a full sort
        // would order a list the loop never reads past.
        let mut visited_mask = 0u64;
        let mut next_sorted = 0usize;
        if children.len() > 64 {
            children.sort_by_key(|&c| (std::cmp::Reverse(topo.subtree_slots_free(c)), c));
        }
        loop {
            let child = if children.len() > 64 {
                if next_sorted >= children.len() {
                    break;
                }
                let c = children[next_sorted];
                next_sorted += 1;
                c
            } else {
                let mut pick: Option<(u64, NodeId, usize)> = None;
                for (i, &c) in children.iter().enumerate() {
                    if visited_mask >> i & 1 == 1 {
                        continue;
                    }
                    let free = topo.subtree_slots_free(c);
                    let better = match pick {
                        None => true,
                        Some((bf, bc, _)) => free > bf || (free == bf && c < bc),
                    };
                    if better {
                        pick = Some((free, c, i));
                    }
                }
                let Some((_, c, i)) = pick else { break };
                visited_mask |= 1u64 << i;
                c
            };
            let memo = memo_allowed && state.is_untouched(child);
            let key = topo.subtree_slots_free(child).min(slot_sat);
            if memo && failed_slots == Some(key) {
                no_group.push(child);
                continue;
            }
            if let Some(group) =
                self.build_group(topo, state, tag, need, child, &hi, spread, scratch)
            {
                found = Some((group, child));
                break;
            }
            if memo {
                failed_slots = Some(key);
            }
            no_group.push(child);
        }
        scratch.put_nodes(children);
        scratch.put_idxs(hi);
        found
    }

    /// Grow a colocation group for one child; `None` unless the exact
    /// cut-difference saving is positive.
    ///
    /// Savings are evaluated *incrementally*: adding VMs of tier `t` only
    /// changes the Eq. 1 contribution of edges incident to `t`, so each
    /// candidate costs O(degree) instead of O(edges). The total equals the
    /// full cut-difference [`CutModel::coloc_saving_kbps`] exactly
    /// (telescoping over the incident-edge deltas).
    ///
    /// Note: the exact cut-difference saving can be positive even when
    /// every per-edge Eq. 2/Eq. 4 closed form reports zero — for unbalanced
    /// trunk edges (`N_u·S ≠ N_v·R`), aggregating senders under one uplink
    /// lets the receiver-side cap of Eq. 1's `min()` bind. The closed forms
    /// assume the paper's balanced case; the cut difference is
    /// authoritative.
    #[allow(clippy::too_many_arguments)]
    fn build_group(
        &self,
        topo: &Topology,
        state: &TenantState<Tag>,
        tag: &Tag,
        need: &[u32],
        child: NodeId,
        hi: &[usize],
        spread_unit: &[u64],
        scratch: &mut Scratch,
    ) -> Option<Vec<u32>> {
        let slots = topo.subtree_slots_free(child).min(u32::MAX as u64) as u32;
        let mut headroom = scratch.u32s();
        headroom.extend((0..need.len()).map(|t| self.ha_headroom(topo, state, tag, child, t)));

        // `cur` = existing + group, mutated in place for candidate probes.
        let mut cur = scratch.u32s();
        state.fill_inside_counts(child, &mut cur);
        let mut group = scratch.u32s();
        group.resize(need.len(), 0);
        let mut used = 0u32;
        let cap = |group: &[u32], headroom: &[u32], t: usize, used: u32| -> u32 {
            (need[t] - group[t])
                .min(slots - used)
                .min(headroom[t].saturating_sub(group[t]))
        };
        let all_edges = tag.edges();

        // Every candidate's saving is `k·spread + before − after` over the
        // edges incident to the touched tiers. `cache[e]` holds each edge's
        // crossing at the *current* `cur`, and `isum[t]` the sum over
        // `incident(t)` — so the `before` side of every probe is a lookup,
        // only the `after` side prices edges, and `k·spread + before` is a
        // free exact upper bound (crossings are non-negative) that skips
        // provably non-winning candidates outright. All pruning is against
        // the incumbent with the original strict comparisons, so the chosen
        // seed and growth steps are bit-identical to the exhaustive probes.
        let mut cache = scratch.u64s();
        let mut isum = scratch.u64s();
        if cur.iter().all(|&c| c == 0) {
            // Every crossing of an empty subtree is zero (Eq. 1 with no VM
            // inside) — no need to price them.
            cache.resize(all_edges.len(), 0);
            isum.resize(need.len(), 0);
        } else {
            cache.extend((0..all_edges.len()).map(|ei| tag.edge_crossing_idx(ei, &cur)));
            isum.extend((0..need.len()).map(|t| {
                tag.incident_edges(TierId(t as u16))
                    .iter()
                    .map(|&ei| cache[ei as usize])
                    .sum::<u64>()
            }));
        }
        // Exact saving of adding k VMs of tier t (restores `cur`).
        let probe_one = |cur: &mut [u32], isum: &[u64], t: usize, k: u32| -> i64 {
            cur[t] += k;
            let after: u64 = tag
                .incident_edges(TierId(t as u16))
                .iter()
                .map(|&ei| tag.edge_crossing_idx(ei as usize, cur))
                .sum();
            cur[t] -= k;
            (k as u64 * spread_unit[t] + isum[t]) as i64 - after as i64
        };
        // Re-price the edges incident to `t` after `cur` changed for good.
        fn refresh_tier(tag: &Tag, cur: &[u32], cache: &mut [u64], isum: &mut [u64], t: usize) {
            let all_edges = tag.edges();
            for &ei in tag.incident_edges(TierId(t as u16)) {
                let e = &all_edges[ei as usize];
                let new = tag.edge_crossing_idx(ei as usize, cur);
                let old = cache[ei as usize];
                if new != old {
                    cache[ei as usize] = new;
                    let (fi, ti) = (e.from.index(), e.to.index());
                    isum[fi] = isum[fi] - old + new;
                    if ti != fi {
                        isum[ti] = isum[ti] - old + new;
                    }
                }
            }
        }

        // Seed: best single tier or trunk-edge pair by exact saving.
        let mut best_seed: Option<([(usize, u32); 2], i64)> = None;
        for &t in hi {
            let k = cap(&group, &headroom, t, used);
            if k == 0 {
                continue;
            }
            let ub = (k as u64 * spread_unit[t] + isum[t]) as i64;
            if ub <= 0 || best_seed.as_ref().is_some_and(|&(_, bs)| ub <= bs) {
                continue;
            }
            let s = probe_one(&mut cur, &isum, t, k);
            if s > 0 && best_seed.as_ref().is_none_or(|&(_, bs)| s > bs) {
                best_seed = Some(([(t, k), (t, 0)], s));
            }
        }
        let hi_mask: u64 = if need.len() <= 64 {
            hi.iter().fold(0u64, |m, &t| m | 1 << t)
        } else {
            0
        };
        let in_hi = |t: usize| -> bool {
            if need.len() <= 64 {
                hi_mask >> t & 1 == 1
            } else {
                hi.contains(&t)
            }
        };
        for e in all_edges {
            if e.is_self_loop() {
                continue;
            }
            let (u, v) = (e.from.index(), e.to.index());
            if !in_hi(u) || !in_hi(v) {
                continue;
            }
            let ku = cap(&group, &headroom, u, used).min(slots / 2 + slots % 2);
            let kv = cap(&group, &headroom, v, ku);
            let ku = cap(&group, &headroom, u, kv); // leftover room back to u
            if ku + kv == 0 {
                continue;
            }
            let spread = ku as u64 * spread_unit[u] + kv as u64 * spread_unit[v];
            let ub = (spread + isum[u] + isum[v]) as i64;
            if ub <= 0 || best_seed.as_ref().is_some_and(|&(_, bs)| ub <= bs) {
                continue;
            }
            // Exact pair probe: `after` walks incident(u) ∪ incident(v)
            // (v's pass skips the shared u–v edges, whose cached `before`
            // contribution is likewise deducted once).
            cur[u] += ku;
            cur[v] += kv;
            let mut after = 0u64;
            let mut shared = 0u64;
            for &ei in tag.incident_edges(TierId(u as u16)) {
                after += tag.edge_crossing_idx(ei as usize, &cur);
            }
            for &ei in tag.incident_edges(TierId(v as u16)) {
                let e2 = &all_edges[ei as usize];
                if e2.from.index() == u || e2.to.index() == u {
                    shared += cache[ei as usize];
                    continue;
                }
                after += tag.edge_crossing_idx(ei as usize, &cur);
            }
            cur[u] -= ku;
            cur[v] -= kv;
            let before = isum[u] + isum[v] - shared;
            let s = spread as i64 + before as i64 - after as i64;
            if s > 0 && best_seed.as_ref().is_none_or(|&(_, bs)| s > bs) {
                best_seed = Some(([(u, ku), (v, kv)], s));
            }
        }
        let Some((seed, _)) = best_seed else {
            scratch.put_u32s(headroom);
            scratch.put_u32s(cur);
            scratch.put_u32s(group);
            scratch.put_u64s(cache);
            scratch.put_u64s(isum);
            return None;
        };
        for (t, k) in seed {
            if k == 0 {
                continue;
            }
            group[t] += k;
            cur[t] += k;
            used += k;
            refresh_tier(tag, &cur, &mut cache, &mut isum, t);
        }

        // Greedy growth while some tier's marginal saving stays positive.
        loop {
            let mut best: Option<(usize, u32, i64)> = None;
            for &t in hi {
                let k = cap(&group, &headroom, t, used);
                if k == 0 {
                    continue;
                }
                let ub = (k as u64 * spread_unit[t] + isum[t]) as i64;
                if ub <= 0 || best.is_some_and(|(_, _, bs)| ub <= bs) {
                    continue;
                }
                let s = probe_one(&mut cur, &isum, t, k);
                if s > 0 && best.is_none_or(|(_, _, bs)| s > bs) {
                    best = Some((t, k, s));
                }
            }
            match best {
                Some((t, k, _)) => {
                    group[t] += k;
                    cur[t] += k;
                    used += k;
                    refresh_tier(tag, &cur, &mut cache, &mut isum, t);
                }
                None => break,
            }
        }
        scratch.put_u32s(headroom);
        scratch.put_u32s(cur);
        scratch.put_u64s(cache);
        scratch.put_u64s(isum);
        Some(group)
    }

    // ------------------------------------------------------------------
    // Balance
    // ------------------------------------------------------------------

    /// `Balance(g, st)`: place the remaining (non-saving) VMs so that each
    /// child's slot and bandwidth utilizations approach 100% together.
    #[allow(clippy::too_many_arguments)]
    fn balance(
        &self,
        txn: &mut ReservationTxn<'_, Tag>,
        tag: &Tag,
        need: &mut [u32],
        st: NodeId,
        demand_mix: f64,
        spread: &[u64],
        scratch: &mut Scratch,
    ) {
        let mut excluded = scratch.nodes();
        loop {
            let found = self.md_subset_sum(
                txn.topo(),
                txn.state(),
                tag,
                need,
                st,
                &excluded,
                demand_mix,
                scratch,
            );
            let Some((gsub, child)) = found else { break };
            for (t, &g) in gsub.iter().enumerate() {
                need[t] -= g;
            }
            let mut sub = gsub;
            let placed = self.alloc(txn, tag, &mut sub, child, demand_mix, spread, scratch);
            for (t, &s) in sub.iter().enumerate() {
                need[t] += s;
            }
            scratch.put_u32s(sub);
            if placed == 0 {
                excluded.push(child);
            }
            // A zero `need` makes every further fill empty; the subset-sum
            // scan would return `None` after pricing the whole shortlist.
            if need_is_zero(need) {
                break;
            }
        }
        scratch.put_nodes(excluded);
    }

    /// `MdSubsetSum`: pick the best child and VM set. Normal mode greedily
    /// fills one child in three dimensions (slots, out-bw, in-bw); under
    /// opportunistic HA with saving undesirable, it returns a single VM for
    /// the child that stays most balanced (§4.5, third modification).
    #[allow(clippy::too_many_arguments)]
    fn md_subset_sum(
        &self,
        topo: &Topology,
        state: &TenantState<Tag>,
        tag: &Tag,
        need: &[u32],
        st: NodeId,
        excluded: &[NodeId],
        demand_mix: f64,
        scratch: &mut Scratch,
    ) -> Option<(Vec<u32>, NodeId)> {
        let mut children = scratch.nodes();
        children.extend(
            topo.children(st)
                .filter(|c| !excluded.contains(c) && topo.subtree_slots_free(*c) > 0),
        );
        if children.is_empty() {
            scratch.put_nodes(children);
            return None;
        }
        let spread = matches!(self.cfg.ha, HaPolicy::Opportunistic { .. })
            && !self.saving_desirable(topo, st, demand_mix);
        if spread {
            let picked = self.single_vm_pick(topo, state, tag, need, &children, scratch);
            scratch.put_nodes(children);
            return picked;
        }

        // Evaluating the greedy fill for every child per Balance iteration
        // is the dominant cost on wide trees; a shortlist of the best
        // candidates by free slots and by available uplink bandwidth keeps
        // the subset-sum quality while bounding the work.
        if children.len() > 6 {
            // Top-4 selections (the keys are total orders, so a selection
            // scan yields exactly what the former full sorts produced).
            let mut shortlist = scratch.nodes();
            top4_by(&children, &mut shortlist, |c| {
                (std::cmp::Reverse(topo.subtree_slots_free(c)), c)
            });
            let mut by_bw = scratch.nodes();
            top4_by(&children, &mut by_bw, |c| {
                let (u, d) = topo.uplink_avail(c).unwrap_or((0, 0));
                (std::cmp::Reverse(u.min(d)), c)
            });
            for &c in by_bw.iter() {
                if !shortlist.contains(&c) {
                    shortlist.push(c);
                }
            }
            scratch.put_nodes(by_bw);
            std::mem::swap(&mut children, &mut shortlist);
            scratch.put_nodes(shortlist);
        }

        // `greedy_fill` is a pure function of (need, the child's free/total
        // slots and uplink state, HA headroom): among shortlisted children
        // this tenant has not touched and no Eq. 7 cap applies to, children
        // with identical physical state fill identically — evaluate one
        // representative and reuse its (selection, score). On a fresh rack
        // that collapses the shortlist to a single fill.
        let memo_allowed = !matches!(self.cfg.ha, HaPolicy::Guaranteed { .. });
        let mut memo_key: Option<FillKey> = None;
        let mut memo_val: Option<(Vec<u32>, f64)> = None;
        let mut best: Option<(f64, u64, NodeId, Vec<u32>)> = None;
        for &child in &children {
            let key = (
                topo.subtree_slots_free(child),
                topo.subtree_slots_total(child),
                topo.uplink_capacity(child),
                topo.uplink_avail(child),
            );
            let (sel, score) = if memo_allowed && state.is_untouched(child) && memo_key == Some(key)
            {
                let (m_sel, m_score) = memo_val.as_ref().expect("memo key implies value"); // cm-analyze: allow(no-unwrap-in-hot-path) -- memo_key and memo_val are written together
                let mut sel = scratch.u32s();
                sel.extend_from_slice(m_sel);
                (sel, *m_score)
            } else {
                let (sel, score) = self.greedy_fill(topo, state, tag, need, child, scratch);
                if memo_allowed && state.is_untouched(child) {
                    memo_key = Some(key);
                    let mut copy = match memo_val.take() {
                        Some((old, _)) => {
                            scratch.put_u32s(old);
                            scratch.u32s()
                        }
                        None => scratch.u32s(),
                    };
                    copy.extend_from_slice(&sel);
                    memo_val = Some((copy, score));
                }
                (sel, score)
            };
            let placed = need_total(&sel);
            if placed == 0 {
                scratch.put_u32s(sel);
                continue;
            }
            let better = match &best {
                None => true,
                Some((bs, bp, _, _)) => score > *bs || (score == *bs && placed > *bp),
            };
            if better {
                if let Some((_, _, _, old)) = best.take() {
                    scratch.put_u32s(old);
                }
                best = Some((score, placed, child, sel));
            } else {
                scratch.put_u32s(sel);
            }
        }
        if let Some((v, _)) = memo_val {
            scratch.put_u32s(v);
        }
        scratch.put_nodes(children);
        best.map(|(_, _, c, sel)| (sel, c))
    }

    /// Opportunistic spread: one VM of the heaviest remaining tier, on the
    /// child whose utilization stays lowest after the addition.
    fn single_vm_pick(
        &self,
        topo: &Topology,
        state: &TenantState<Tag>,
        tag: &Tag,
        need: &[u32],
        children: &[NodeId],
        scratch: &mut Scratch,
    ) -> Option<(Vec<u32>, NodeId)> {
        let t = (0..need.len())
            .filter(|&t| need[t] > 0)
            .max_by_key(|&t| tag.per_vm_demand(TierId(t as u16)))?;
        let tid = TierId(t as u16);
        let (snd, rcv) = (tag.per_vm_snd(tid), tag.per_vm_rcv(tid));
        let mut best: Option<(f64, NodeId)> = None;
        for &child in children {
            if self.ha_headroom(topo, state, tag, child, t) == 0 {
                continue;
            }
            let free = topo.subtree_slots_free(child);
            if free == 0 {
                continue;
            }
            let (au, ad) = topo.uplink_avail(child).unwrap_or((u64::MAX, u64::MAX));
            if au < snd || ad < rcv {
                continue;
            }
            let (cu, cd) = topo.uplink_capacity(child).unwrap_or((u64::MAX, u64::MAX));
            let total = topo.subtree_slots_total(child);
            let u_slot = 1.0 - (free - 1) as f64 / total.max(1) as f64;
            let u_up = 1.0 - (au - snd) as f64 / cu.max(1) as f64;
            let u_dn = 1.0 - (ad - rcv) as f64 / cd.max(1) as f64;
            let worst = u_slot.max(u_up).max(u_dn);
            if best.is_none_or(|(b, _)| worst < b) {
                best = Some((worst, child));
            }
        }
        let (_, child) = best?;
        let mut sel = scratch.u32s();
        sel.resize(need.len(), 0);
        sel[t] = 1;
        Some((sel, child))
    }

    /// Greedy 3-D subset-sum fill of one child. Iterates over tiers (not
    /// VMs), at each step adding the chunk that keeps the three utilization
    /// ratios (slots, out-bw, in-bw) most balanced. Returns the selection
    /// and the child's score `min(u_slot, (u_up+u_dn)/2)` after the fill —
    /// "lead both slot and uplink utilization of child to approach 100%".
    fn greedy_fill(
        &self,
        topo: &Topology,
        state: &TenantState<Tag>,
        tag: &Tag,
        need: &[u32],
        child: NodeId,
        scratch: &mut Scratch,
    ) -> (Vec<u32>, f64) {
        let total_slots = topo.subtree_slots_total(child).max(1);
        let mut rem_slots = topo.subtree_slots_free(child);
        let (cap_up, cap_dn) = topo.uplink_capacity(child).unwrap_or((u64::MAX, u64::MAX));
        let (mut rem_up, mut rem_dn) = topo.uplink_avail(child).unwrap_or((u64::MAX, u64::MAX));
        let mut sel = scratch.u32s();
        sel.resize(need.len(), 0);

        let inv_slots = 1.0 / total_slots as f64;
        let inv_up = 1.0 / cap_up.max(1) as f64;
        let inv_dn = 1.0 / cap_dn.max(1) as f64;
        let util = |rem_slots: u64, rem_up: u64, rem_dn: u64| -> (f64, f64, f64) {
            (
                1.0 - rem_slots as f64 * inv_slots,
                1.0 - rem_up as f64 * inv_up,
                1.0 - rem_dn as f64 * inv_dn,
            )
        };

        loop {
            let mut best: Option<(f64, f64, usize, u32)> = None; // (imbalance, -min_util, tier, k)
            for t in 0..need.len() {
                let avail = need[t] - sel[t];
                if avail == 0 || rem_slots == 0 {
                    continue;
                }
                let tid = TierId(t as u16);
                let (snd, rcv) = (tag.per_vm_snd(tid), tag.per_vm_rcv(tid));
                let head = self
                    .ha_headroom(topo, state, tag, child, t)
                    .saturating_sub(sel[t]);
                let mut k = avail.min(rem_slots.min(u32::MAX as u64) as u32).min(head);
                if let Some(q) = rem_up.checked_div(snd) {
                    k = k.min(q.min(u32::MAX as u64) as u32);
                }
                if let Some(q) = rem_dn.checked_div(rcv) {
                    k = k.min(q.min(u32::MAX as u64) as u32);
                }
                if k == 0 {
                    continue;
                }
                let (us, uu, ud) = util(
                    rem_slots - k as u64,
                    rem_up - k as u64 * snd,
                    rem_dn - k as u64 * rcv,
                );
                let imbalance = us.max(uu).max(ud) - us.min(uu).min(ud);
                let min_util = us.min(uu).min(ud);
                let cand = (imbalance, -min_util, t, k);
                if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    best = Some(cand);
                }
            }
            match best {
                Some((_, _, t, k)) => {
                    let tid = TierId(t as u16);
                    sel[t] += k;
                    rem_slots -= k as u64;
                    rem_up -= k as u64 * tag.per_vm_snd(tid);
                    rem_dn -= k as u64 * tag.per_vm_rcv(tid);
                }
                None => break,
            }
        }
        let (us, uu, ud) = util(rem_slots, rem_up, rem_dn);
        (sel, us.min((uu + ud) / 2.0))
    }

    /// Plain slot-first-fit used when `Balance` is disabled (Fig. 10's
    /// Coloc-only ablation).
    #[allow(clippy::too_many_arguments)]
    fn first_fit(
        &self,
        txn: &mut ReservationTxn<'_, Tag>,
        tag: &Tag,
        need: &mut [u32],
        st: NodeId,
        demand_mix: f64,
        spread: &[u64],
        scratch: &mut Scratch,
    ) {
        let mut children = scratch.nodes();
        children.extend(txn.topo().children(st));
        children.sort_by_key(|&c| (std::cmp::Reverse(txn.topo().subtree_slots_free(c)), c));
        for &child in &children {
            if need_is_zero(need) {
                break;
            }
            let slots = txn.topo().subtree_slots_free(child).min(u32::MAX as u64) as u32;
            if slots == 0 {
                continue;
            }
            let mut gsub = scratch.u32s();
            gsub.resize(need.len(), 0);
            let mut used = 0;
            for t in 0..need.len() {
                let head = self.ha_headroom(txn.topo(), txn.state(), tag, child, t);
                let k = need[t].min(slots - used).min(head);
                gsub[t] = k;
                used += k;
                if used == slots {
                    break;
                }
            }
            if used == 0 {
                scratch.put_u32s(gsub);
                continue;
            }
            for (t, &g) in gsub.iter().enumerate() {
                need[t] -= g;
            }
            let mut sub = gsub;
            self.alloc(txn, tag, &mut sub, child, demand_mix, spread, scratch);
            for (t, &s) in sub.iter().enumerate() {
                need[t] += s;
            }
            scratch.put_u32s(sub);
        }
        scratch.put_nodes(children);
    }

    // ------------------------------------------------------------------
    // HA helpers
    // ------------------------------------------------------------------

    /// Eq. 7 headroom: how many more VMs of `tier` may be placed under
    /// `node` without violating the guaranteed-WCS cap of the fault domain
    /// (the ancestor at `laa_level`) containing it. Unbounded when no
    /// guarantee applies.
    fn ha_headroom(
        &self,
        topo: &Topology,
        state: &TenantState<Tag>,
        tag: &Tag,
        node: NodeId,
        tier: usize,
    ) -> u32 {
        let HaPolicy::Guaranteed { rwcs, laa_level } = self.cfg.ha else {
            return u32::MAX;
        };
        if topo.level(node) > laa_level {
            return u32::MAX;
        }
        let domain = topo
            .path_to_root(node)
            .find(|&a| topo.level(a) == laa_level)
            .expect("every node has an ancestor at laa_level"); // cm-analyze: allow(no-unwrap-in-hot-path) -- level(node) <= laa_level was checked above and path_to_root visits every level
        let n = tag.tiers()[tier].size;
        if tag.tiers()[tier].external {
            return u32::MAX;
        }
        wcs_cap(n, rwcs).saturating_sub(state.count_of(domain, tier))
    }

    /// §4.5 desirability: saving on `st`'s children uplinks is worthwhile
    /// iff their available bandwidth per unallocated slot is below the
    /// (EWMA-blended) per-VM demand.
    fn saving_desirable(&self, topo: &Topology, st: NodeId, demand_mix: f64) -> bool {
        match per_slot_avail_kbps(topo, topo.children(st)) {
            Some(per_slot) => per_slot < demand_mix,
            None => true, // no free slots below: moot, let recursion fail
        }
    }

    /// Starting level for `FindLowestSubtree`:
    /// * guaranteed HA forces `laa_level + 1` whenever some tier's Eq. 7 cap
    ///   is below its size (placing the whole tenant inside one fault domain
    ///   would violate it);
    /// * opportunistic HA starts at the lowest level where bandwidth saving
    ///   is desirable (§4.5, second modification) — evaluated O(1) per level
    ///   from the topology's per-level availability caches;
    /// * otherwise the server level.
    ///
    /// The second return value is true when the decision consumed
    /// **whole-topology state** (the opportunistic arm's per-level
    /// availability sums): the caller must then mark any placement trace
    /// as unknown, because the concurrent engine's per-pod conflict
    /// validation cannot cover a read that spans every pod. Owning that
    /// flag here keeps the invariant self-enforcing for future arms.
    fn start_level(&self, topo: &Topology, tag: &Tag, demand_mix: f64) -> (u8, bool) {
        match self.cfg.ha {
            HaPolicy::None => (0, false),
            HaPolicy::Guaranteed { rwcs, laa_level } => {
                let needs_spread = tag
                    .internal_tiers()
                    .any(|t| wcs_cap(tag.tier(t).size, rwcs) < tag.tier(t).size);
                if needs_spread {
                    ((laa_level + 1).min((topo.num_levels() - 1) as u8), false)
                } else {
                    (0, false)
                }
            }
            HaPolicy::Opportunistic { .. } => {
                let top = (topo.num_levels() - 1) as u8;
                // Every level partitions the servers, so the level's free
                // slots are the root's; the bandwidth numerator is the
                // incrementally-maintained per-level half-sum (bit-identical
                // to the per-node scan it replaces).
                let slots = topo.subtree_slots_free(topo.root());
                for l in 0..top {
                    if slots == 0 {
                        break;
                    }
                    let per_slot = topo.avail_half_sum_at_level(l as usize) as f64 / slots as f64;
                    if per_slot < demand_mix {
                        return (l, true);
                    }
                }
                (top, true)
            }
        }
    }
}

impl Placer for CmPlacer {
    fn name(&self) -> &'static str {
        self.label
    }

    fn place(&mut self, topo: &mut Topology, tag: &Tag) -> Result<Deployed, RejectReason> {
        self.place_tag(topo, tag).map(Deployed::from)
    }

    fn place_shared(
        &mut self,
        topo: &mut Topology,
        tag: &Arc<Tag>,
    ) -> Result<Deployed, RejectReason> {
        self.place_tag_shared(topo, tag).map(Deployed::from)
    }

    fn place_speculative(
        &mut self,
        topo: &mut Topology,
        tag: &Arc<Tag>,
        trace: &mut PlacementTrace,
    ) -> Result<Deployed, RejectReason> {
        // Price the arrival exactly as `observe` would, without advancing
        // the EWMA: the engine advances it once per arrival (in sequence
        // order) through `note_arrival`, so repeated speculation of the
        // same arrival sees identical predictor state.
        let demand_mix = self.predictor.peek(tag.avg_per_vm_demand_kbps());
        trace.reset();
        // Whole-topology reads (opportunistic HA's desirability scan) are
        // flagged by `start_level` itself inside `place_tag_with_mix`.
        self.place_tag_with_mix(topo, tag, demand_mix, Some(trace))
            .map(Deployed::from)
    }

    fn note_arrival(&mut self, tag: &Arc<Tag>) {
        self.predictor.observe(tag.avg_per_vm_demand_kbps());
    }

    fn place_incremental(
        &mut self,
        topo: &mut Topology,
        deployed: &mut Deployed,
        new_tag: &Arc<Tag>,
        tier: TierId,
        new_size: u32,
    ) -> Result<(), RejectReason> {
        // Exact incremental scaling: CloudMirror prices deployments on the
        // TAG itself, so only the delta VMs move — existing placement stays
        // put and every touched link is repriced under the resized model
        // (see [`CmPlacer::scale_tier`]). Non-TAG handles (impossible for
        // deployments this placer produced) fall back to the generic
        // re-place path.
        let _ = new_size;
        match deployed.tag_state_mut() {
            Some(state) => self.scale_tier_shared(topo, state, tier, new_tag),
            None => place_incremental_replace(self, topo, deployed, new_tag),
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TagBuilder;
    use cm_topology::{mbps, TreeSpec};

    fn topo_small() -> Topology {
        // 2 pods × 2 racks × 4 servers, 4 slots each; 1 G NICs, 2 G ToR,
        // 4 G agg.
        Topology::build(&TreeSpec::small(
            2,
            2,
            4,
            4,
            [mbps(1000.0), mbps(2000.0), mbps(4000.0)],
        ))
    }

    fn hose(n: u32, sr: u64) -> Tag {
        let mut b = TagBuilder::new("hose");
        let t = b.tier("t", n);
        b.self_loop(t, sr).unwrap();
        b.build().unwrap()
    }

    fn three_tier(n: u32, b1: u64, b2: u64, b3: u64) -> Tag {
        let mut b = TagBuilder::new("web3");
        let web = b.tier("web", n);
        let logic = b.tier("logic", n);
        let db = b.tier("db", n);
        b.sym_edge(web, logic, b1).unwrap();
        b.sym_edge(logic, db, b2).unwrap();
        b.self_loop(db, b3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn places_simple_hose_tenant() {
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm());
        let tag = hose(4, mbps(100.0));
        let state = placer.place_tag(&mut topo, &tag).expect("should fit");
        assert_eq!(state.total_placed(&topo), 4);
        state.check_consistency(&topo).unwrap();
        topo.check_invariants().unwrap();
    }

    #[test]
    fn hose_tenant_colocates_onto_one_server() {
        // 4 VMs fit one server; colocation saves the whole hose bandwidth,
        // so nothing is reserved anywhere.
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm());
        let tag = hose(4, mbps(100.0));
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        let placement = state.placement(&topo);
        assert_eq!(placement.len(), 1, "all VMs on one server");
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
    }

    #[test]
    fn release_restores_everything() {
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm());
        let tag = three_tier(3, mbps(100.0), mbps(50.0), mbps(20.0));
        let mut state = placer.place_tag(&mut topo, &tag).unwrap();
        assert_eq!(state.total_placed(&topo), 9);
        state.clear(&mut topo);
        assert_eq!(topo.subtree_slots_free(topo.root()), 16 * 4);
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
        topo.check_invariants().unwrap();
    }

    #[test]
    fn rejects_when_no_slots() {
        let mut topo = topo_small(); // 64 slots
        let mut placer = CmPlacer::new(CmConfig::cm());
        let tag = hose(65, 1);
        assert_eq!(
            placer.place_tag(&mut topo, &tag).err(),
            Some(RejectReason::InsufficientSlots)
        );
        topo.check_invariants().unwrap();
        assert_eq!(topo.subtree_slots_free(topo.root()), 64);
    }

    #[test]
    fn rejects_on_bandwidth_and_leaves_no_trace() {
        // A 2-tier trunk demanding more than the NIC can carry per VM
        // cannot be placed (each tier is far bigger than a server, so
        // cross-server traffic is unavoidable).
        let mut topo = topo_small();
        let baseline = topo.subtree_slots_free(topo.root());
        let mut placer = CmPlacer::new(CmConfig::cm());
        let mut b = TagBuilder::new("heavy");
        let u = b.tier("u", 20);
        let v = b.tier("v", 20);
        b.sym_edge(u, v, mbps(800.0)).unwrap(); // per-VM 1.6 G > 1 G NIC
        let tag = b.build().unwrap();
        assert_eq!(
            placer.place_tag(&mut topo, &tag).err(),
            Some(RejectReason::InsufficientBandwidth)
        );
        assert_eq!(topo.subtree_slots_free(topo.root()), baseline);
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
    }

    #[test]
    fn trunk_pair_colocated_to_save_bandwidth() {
        // web(2) <-> logic(2) with heavy traffic: CM should put all 4 VMs
        // under one server (slots 4), zeroing reservations.
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm());
        let mut b = TagBuilder::new("pair");
        let u = b.tier("u", 2);
        let v = b.tier("v", 2);
        b.sym_edge(u, v, mbps(300.0)).unwrap();
        let tag = b.build().unwrap();
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        assert_eq!(state.placement(&topo).len(), 1);
        assert_eq!(topo.reserved_at_level(0), (0, 0));
    }

    #[test]
    fn guaranteed_ha_respects_eq7_cap() {
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm_ha(0.5));
        let tag = hose(8, mbps(10.0));
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        // No server may hold more than max(1, ⌊8·0.5⌋) = 4 VMs.
        for (_, counts) in state.placement(&topo) {
            assert!(counts[0] <= 4);
        }
        let wcs = state.wcs_at_level(&topo, 0);
        assert!(wcs[0].unwrap() >= 0.5);
    }

    #[test]
    fn guaranteed_ha_rwcs75_spreads_wider() {
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm_ha(0.75));
        let tag = hose(8, mbps(10.0));
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        for (_, counts) in state.placement(&topo) {
            assert!(counts[0] <= 2);
        }
        assert!(state.wcs_at_level(&topo, 0)[0].unwrap() >= 0.75);
    }

    #[test]
    fn opportunistic_ha_spreads_when_bandwidth_plentiful() {
        // Tiny demand vs 1 G NICs: saving is undesirable, VMs spread out.
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm_opp_ha());
        let tag = hose(8, mbps(1.0));
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        let placement = state.placement(&topo);
        assert!(
            placement.len() >= 4,
            "expected spread, got {} servers",
            placement.len()
        );
        // All guarantees still hold (consistency implies reservations match
        // the cut prices).
        state.check_consistency(&topo).unwrap();
    }

    #[test]
    fn singleton_tiers_always_placeable_under_ha() {
        // Eq. 7's max(1, ·) lets single-VM tiers through even at RWCS 75%.
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm_ha(0.75));
        let mut b = TagBuilder::new("tiny");
        let u = b.tier("u", 1);
        let v = b.tier("v", 1);
        b.sym_edge(u, v, mbps(5.0)).unwrap();
        let tag = b.build().unwrap();
        placer.place_tag(&mut topo, &tag).unwrap();
    }

    #[test]
    fn fig6_balance_beats_blind_colocation() {
        // Paper Fig. 6: rack of 4 servers × 2 slots, 10 Mbps NICs. Request:
        // A (2 VMs, hose 4), B (2 VMs, hose 4), C (4 VMs, hose 6) — total
        // 8 VMs, 40 Mbps demand. Blindly colocating A and B (Fig. 6(c))
        // strands C with 12 Mbps on two NICs; the balanced placement of
        // Fig. 6(d) pairs one C VM with one low-bandwidth VM per server,
        // hitting exactly 10 Mbps per NIC.
        let mut topo = Topology::build(&TreeSpec::fig6_rack());
        let mut placer = CmPlacer::new(CmConfig::cm());
        let mut b = TagBuilder::new("fig6");
        let a = b.tier("A", 2);
        let bb = b.tier("B", 2);
        let c = b.tier("C", 4);
        b.self_loop(a, mbps(4.0)).unwrap();
        b.self_loop(bb, mbps(4.0)).unwrap();
        b.self_loop(c, mbps(6.0)).unwrap();
        let tag = b.build().unwrap();
        let state = placer
            .place_tag(&mut topo, &tag)
            .expect("balanced placement must fit (Fig. 6(d))");
        state.check_consistency(&topo).unwrap();
        // Two C VMs on one server would need min(2,2)·6 = 12 Mbps through a
        // 10 Mbps NIC — the capacity check forbids it, so each server holds
        // at most one C VM.
        for (_, counts) in state.placement(&topo) {
            assert!(counts[2] <= 1);
        }
        topo.check_invariants().unwrap();
    }

    #[test]
    fn fig6_colocation_only_variant_rejects() {
        // With Balance disabled (Coloc + first-fit), the Fig. 6 request
        // degenerates: A and B colocate per-server (saving their hoses) and
        // C's four VMs are forced to double up — 12 Mbps > 10 Mbps NIC —
        // so the request bounces, exactly the failure mode of Fig. 6(c).
        let mut topo = Topology::build(&TreeSpec::fig6_rack());
        let mut placer = CmPlacer::new(CmConfig::coloc_only());
        let mut b = TagBuilder::new("fig6");
        let a = b.tier("A", 2);
        let bb = b.tier("B", 2);
        let c = b.tier("C", 4);
        b.self_loop(a, mbps(4.0)).unwrap();
        b.self_loop(bb, mbps(4.0)).unwrap();
        b.self_loop(c, mbps(6.0)).unwrap();
        let tag = b.build().unwrap();
        let result = placer.place_tag(&mut topo, &tag);
        assert_eq!(result.err(), Some(RejectReason::InsufficientBandwidth));
        topo.check_invariants().unwrap();
    }

    #[test]
    fn big_tenant_spans_levels() {
        // 40 VMs > one rack (16 slots): needs a pod or more.
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm());
        let tag = hose(40, mbps(5.0));
        let state = placer.place_tag(&mut topo, &tag).unwrap();
        assert_eq!(state.total_placed(&topo), 40);
        state.check_consistency(&topo).unwrap();
        topo.check_invariants().unwrap();
    }

    #[test]
    fn ablation_variants_still_place() {
        for cfg in [CmConfig::coloc_only(), CmConfig::balance_only()] {
            let mut topo = topo_small();
            let mut placer = CmPlacer::new(cfg);
            let tag = three_tier(4, mbps(50.0), mbps(25.0), mbps(10.0));
            let state = placer.place_tag(&mut topo, &tag).unwrap();
            assert_eq!(state.total_placed(&topo), 12);
            state.check_consistency(&topo).unwrap();
        }
    }

    #[test]
    fn scale_tier_grows_a_live_deployment() {
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm());
        let tag = three_tier(3, mbps(50.0), mbps(20.0), mbps(10.0));
        let mut state = placer.place_tag(&mut topo, &tag).unwrap();
        placer
            .scale_tier(&mut topo, &mut state, TierId(0), 8)
            .unwrap();
        assert_eq!(state.total_placed(&topo), 8 + 3 + 3);
        assert_eq!(state.model().tier(TierId(0)).size, 8);
        state.check_consistency(&topo).unwrap();
        topo.check_invariants().unwrap();
        // Per-VM guarantees unchanged by scaling (§3).
        assert_eq!(state.model().edges(), tag.edges());
        state.clear(&mut topo);
        assert_eq!(topo.subtree_slots_free(topo.root()), 64);
    }

    #[test]
    fn scale_tier_shrinks_and_releases_resources() {
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm());
        let tag = hose(12, mbps(20.0));
        let mut state = placer.place_tag(&mut topo, &tag).unwrap();
        let before = topo.subtree_slots_free(topo.root());
        placer
            .scale_tier(&mut topo, &mut state, TierId(0), 5)
            .unwrap();
        assert_eq!(state.total_placed(&topo), 5);
        assert_eq!(topo.subtree_slots_free(topo.root()), before + 7);
        state.check_consistency(&topo).unwrap();
        state.clear(&mut topo);
        topo.check_invariants().unwrap();
    }

    #[test]
    fn scale_tier_failure_leaves_deployment_untouched() {
        let mut topo = topo_small(); // 64 slots
        let mut placer = CmPlacer::new(CmConfig::cm());
        let tag = hose(10, mbps(20.0));
        let mut state = placer.place_tag(&mut topo, &tag).unwrap();
        let snapshot_reserved = state.total_reserved_kbps();
        let snapshot_slots = topo.subtree_slots_free(topo.root());
        // Growing past the datacenter's slot capacity must fail cleanly.
        assert_eq!(
            placer
                .scale_tier(&mut topo, &mut state, TierId(0), 200)
                .err(),
            Some(RejectReason::InsufficientSlots)
        );
        assert_eq!(state.total_placed(&topo), 10);
        assert_eq!(state.model().tier(TierId(0)).size, 10);
        assert_eq!(state.total_reserved_kbps(), snapshot_reserved);
        assert_eq!(topo.subtree_slots_free(topo.root()), snapshot_slots);
        state.check_consistency(&topo).unwrap();
    }

    #[test]
    fn scale_tier_noop_and_repeated_cycles() {
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm());
        let tag = three_tier(2, mbps(30.0), mbps(10.0), mbps(5.0));
        let mut state = placer.place_tag(&mut topo, &tag).unwrap();
        placer
            .scale_tier(&mut topo, &mut state, TierId(1), 2)
            .unwrap(); // no-op
        for _ in 0..3 {
            placer
                .scale_tier(&mut topo, &mut state, TierId(1), 6)
                .unwrap();
            placer
                .scale_tier(&mut topo, &mut state, TierId(1), 2)
                .unwrap();
            state.check_consistency(&topo).unwrap();
        }
        state.clear(&mut topo);
        for l in 0..topo.num_levels() {
            assert_eq!(topo.reserved_at_level(l), (0, 0));
        }
    }

    #[test]
    fn sequential_tenants_share_the_datacenter() {
        let mut topo = topo_small();
        let mut placer = CmPlacer::new(CmConfig::cm());
        let mut states = Vec::new();
        for i in 0..8 {
            let tag = hose(6, mbps(20.0 + i as f64));
            states.push(placer.place_tag(&mut topo, &tag).unwrap());
        }
        assert_eq!(topo.subtree_slots_free(topo.root()), 64 - 48);
        for s in &states {
            s.check_consistency(&topo).unwrap();
        }
        // Release every other tenant and verify the ledger stays exact.
        for (i, s) in states.iter_mut().enumerate() {
            if i % 2 == 0 {
                s.clear(&mut topo);
            }
        }
        assert_eq!(topo.subtree_slots_free(topo.root()), 64 - 24);
        topo.check_invariants().unwrap();
    }
}
