//! CloudMirror VM placement (§4.4–§4.5, Algorithm 1).
//!
//! [`CmPlacer`] deploys a TAG onto a tree topology. The algorithm:
//!
//! 1. `FindLowestSubtree` — find the lowest subtree likely to fit the whole
//!    tenant (enough free slots; enough root-path bandwidth for the tenant's
//!    external traffic).
//! 2. `Alloc` — recursively distribute VMs over the subtree's children:
//!    * `Colocate` groups tiers whose colocation *provably* saves bandwidth
//!      (verified with the exact Eq. 4 / cut-difference check, gated by the
//!      Eq. 2/6 size conditions);
//!    * `Balance` packs the remaining VMs with a 3-dimensional
//!      (slots, out-bw, in-bw) greedy subset-sum so that slot and bandwidth
//!      utilization of each child approach 100% together (the paper's
//!      `MdSubsetSum`, extending Przydatek's greedy 1-D heuristic).
//! 3. On failure, everything is rolled back and the search moves one level
//!    up, until the root fails and the tenant is rejected.
//!
//! High availability (§4.5) comes in two flavours:
//! * [`HaPolicy::Guaranteed`] enforces Eq. 7 — no more than
//!   `max(1, ⌊N·(1−RWCS)⌋)` VMs of a tier under any single fault domain
//!   (subtree at level `laa_level`);
//! * [`HaPolicy::Opportunistic`] spreads VMs whenever bandwidth saving is
//!   not *desirable* (available bandwidth per free slot exceeds the expected
//!   per-VM demand, EWMA-predicted from past arrivals), improving WCS for
//!   free while preserving all bandwidth guarantees.

mod cm;
mod concurrent;
mod engine;
mod predictor;

pub use cm::CmPlacer;
pub use concurrent::{
    replay_outcomes, run_events, run_events_serial, AdmitRecord, ConcurrentConfig,
    ConcurrentOutcome, Event, EventOutcome,
};
pub use engine::{
    place_incremental_replace, reject_reason, search_and_place, search_and_place_traced,
    search_and_place_with, Deployed, Evacuation, PlacementTrace, Placer, SearchStrategy,
};
pub use predictor::DemandPredictor;

/// High-availability policy for the placer (§4.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HaPolicy {
    /// No HA consideration: pure bandwidth-efficiency placement (the
    /// paper's "CM").
    None,
    /// Guarantee worst-case survivability: at most
    /// `max(1, ⌊N^t·(1−rwcs)⌋)` VMs of tier `t` under any subtree at
    /// `laa_level` (Eq. 7). The paper's "CM+HA"; default `laa_level` is the
    /// server level (0).
    Guaranteed {
        /// Required worst-case survivability in `[0, 1)`.
        rwcs: f64,
        /// Anti-affinity level `L_AA` (0 = server).
        laa_level: u8,
    },
    /// Opportunistically spread VMs when bandwidth saving is not desirable
    /// (the paper's "CM+oppHA"). `laa_level` only affects WCS reporting.
    Opportunistic {
        /// Level at which survivability is of interest (0 = server).
        laa_level: u8,
    },
}

impl HaPolicy {
    /// The anti-affinity level if the policy has one.
    pub fn laa_level(&self) -> Option<u8> {
        match self {
            HaPolicy::None => None,
            HaPolicy::Guaranteed { laa_level, .. } | HaPolicy::Opportunistic { laa_level } => {
                Some(*laa_level)
            }
        }
    }
}

/// Configuration of the CloudMirror placer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmConfig {
    /// Enable the `Colocate` subroutine (disable for the Fig. 10
    /// "Balance-only" ablation).
    pub colocate: bool,
    /// Enable the `Balance` subroutine (disable for the Fig. 10
    /// "Coloc-only" ablation; a plain first-fit fills the gap, as the paper
    /// leaves the non-saving remainder unspecified in that mode).
    pub balance: bool,
    /// High-availability policy.
    pub ha: HaPolicy,
}

impl Default for CmConfig {
    fn default() -> Self {
        CmConfig {
            colocate: true,
            balance: true,
            ha: HaPolicy::None,
        }
    }
}

impl CmConfig {
    /// The paper's default CM (no HA).
    pub fn cm() -> Self {
        Self::default()
    }

    /// The paper's CM+HA at the server level.
    pub fn cm_ha(rwcs: f64) -> Self {
        CmConfig {
            ha: HaPolicy::Guaranteed { rwcs, laa_level: 0 },
            ..Self::default()
        }
    }

    /// The paper's CM+oppHA.
    pub fn cm_opp_ha() -> Self {
        CmConfig {
            ha: HaPolicy::Opportunistic { laa_level: 0 },
            ..Self::default()
        }
    }

    /// Fig. 10 ablation: colocation only.
    pub fn coloc_only() -> Self {
        CmConfig {
            balance: false,
            ..Self::default()
        }
    }

    /// Fig. 10 ablation: balance only.
    pub fn balance_only() -> Self {
        CmConfig {
            colocate: false,
            ..Self::default()
        }
    }

    /// Canonical display label for this configuration, mirroring the
    /// paper's algorithm names (used by [`CmPlacer::new`] and the
    /// experiment drivers).
    pub fn label(&self) -> &'static str {
        match (self.colocate, self.balance, self.ha) {
            (true, true, HaPolicy::None) => "CM",
            (_, _, HaPolicy::Guaranteed { .. }) => "CM+HA",
            (_, _, HaPolicy::Opportunistic { .. }) => "CM+oppHA",
            (true, false, _) => "Coloc",
            (false, true, _) => "Balance",
            (false, false, _) => "FirstFit",
        }
    }
}

/// Why a tenant was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Not enough free VM slots anywhere (Table 1 stops at the first such
    /// rejection).
    InsufficientSlots,
    /// Slots existed but no placement satisfied the bandwidth guarantees.
    InsufficientBandwidth,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::InsufficientSlots => write!(f, "insufficient VM slots"),
            RejectReason::InsufficientBandwidth => write!(f, "insufficient bandwidth"),
        }
    }
}

impl std::error::Error for RejectReason {}

pub(crate) fn need_is_zero(need: &[u32]) -> bool {
    need.iter().all(|&c| c == 0)
}

pub(crate) fn need_total(need: &[u32]) -> u64 {
    need.iter().map(|&c| c as u64).sum()
}

/// Restore `need` after a rolled-back placement map.
pub(crate) fn restore_need(map: &[crate::reserve::PlacementEntry], need: &mut [u32]) {
    for e in map {
        need[e.tier] += e.count;
    }
}

/// Average available bandwidth per kbps-slot comparison value used by the
/// opportunistic-HA desirability test (§4.5).
pub(crate) fn per_slot_avail_kbps(
    topo: &cm_topology::Topology,
    nodes: impl Iterator<Item = cm_topology::NodeId>,
) -> Option<f64> {
    let mut bw: u128 = 0;
    let mut slots: u64 = 0;
    for n in nodes {
        if let Some((u, d)) = topo.uplink_avail(n) {
            bw += (u as u128 + d as u128) / 2;
        }
        slots += topo.subtree_slots_free(n);
    }
    if slots == 0 {
        None
    } else {
        Some(bw as f64 / slots as f64)
    }
}

/// Eq. 7 cap: the most VMs of a tier of size `n` that may share one fault
/// domain while preserving `rwcs` worst-case survivability. Public so the
/// fault-recovery drivers can re-derive the admitted survivability bound a
/// placement is judged against after a domain kill.
pub fn wcs_cap(n: u32, rwcs: f64) -> u32 {
    let cap = (n as f64 * (1.0 - rwcs)).floor() as u32;
    cap.max(1)
}

/// `FindLowestSubtree(g, level)`: the best subtree at exactly `level` that
/// can plausibly host a whole tenant — enough free slots for `total_vms` and
/// enough available bandwidth on its root path for the tenant's external
/// demand. Among candidates, most free slots wins ("likely to fit"), ties by
/// id. Shared by CloudMirror and the baseline placers in `cm-baselines`.
///
/// Implemented by descending from the root over the topology's
/// incrementally-maintained subtree aggregates
/// ([`cm_topology::Topology::descend_to_level`]), O(branching × depth)
/// instead of the O(level-width × depth) scan; the scan survives as
/// [`find_lowest_subtree_linear`] for equivalence testing.
pub fn find_lowest_subtree(
    topo: &cm_topology::Topology,
    level: usize,
    total_vms: u64,
    ext_demand: (cm_topology::Kbps, cm_topology::Kbps),
) -> Option<cm_topology::NodeId> {
    topo.descend_to_level(level, total_vms, ext_demand)
}

/// The pre-descend reference implementation of [`find_lowest_subtree`]: a
/// linear scan over every node of the level with a full `avail_to_root`
/// path walk per candidate. Kept (and exposed through
/// [`SearchStrategy::LinearReference`]) so property and simulation tests
/// can prove the descend search makes bit-identical admission decisions;
/// not used by any production placer.
pub fn find_lowest_subtree_linear(
    topo: &cm_topology::Topology,
    level: usize,
    total_vms: u64,
    ext_demand: (cm_topology::Kbps, cm_topology::Kbps),
) -> Option<cm_topology::NodeId> {
    if level >= topo.num_levels() {
        return None;
    }
    let mut best: Option<(u64, cm_topology::NodeId)> = None;
    for &n in topo.nodes_at_level(level) {
        let free = topo.subtree_slots_free(n);
        if free < total_vms {
            continue;
        }
        let (up, dn) = topo.avail_to_root(n);
        if up < ext_demand.0 || dn < ext_demand.1 {
            continue;
        }
        if best.is_none_or(|(bf, _)| free > bf) {
            best = Some((free, n));
        }
    }
    best.map(|(_, n)| n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcs_cap_matches_eq7() {
        assert_eq!(wcs_cap(10, 0.0), 10);
        assert_eq!(wcs_cap(10, 0.5), 5);
        assert_eq!(wcs_cap(10, 0.75), 2);
        assert_eq!(wcs_cap(10, 0.25), 7);
        // max(1, ...) floor: even total anti-affinity allows one VM.
        assert_eq!(wcs_cap(10, 0.99), 1);
        assert_eq!(wcs_cap(1, 0.5), 1);
    }

    #[test]
    fn config_presets() {
        assert!(CmConfig::cm().colocate && CmConfig::cm().balance);
        assert!(!CmConfig::coloc_only().balance);
        assert!(!CmConfig::balance_only().colocate);
        assert_eq!(
            CmConfig::cm_ha(0.5).ha,
            HaPolicy::Guaranteed {
                rwcs: 0.5,
                laa_level: 0
            }
        );
        assert_eq!(HaPolicy::None.laa_level(), None);
        assert_eq!(CmConfig::cm_opp_ha().ha.laa_level(), Some(0));
    }

    #[test]
    fn need_helpers() {
        let mut need = vec![2, 0, 3];
        assert!(!need_is_zero(&need));
        assert_eq!(need_total(&need), 5);
        let map = vec![crate::reserve::PlacementEntry {
            server: cm_topology::NodeId(0),
            tier: 2,
            count: 3,
        }];
        restore_need(&map, &mut need);
        assert_eq!(need, vec![2, 0, 6]);
    }
}
