//! The cut-bandwidth abstraction shared by all network models.
//!
//! Every abstraction model in the paper (TAG, VOC, VC/hose, pipe) answers the
//! same question for the placement layer: *given that a subtree of the
//! physical tree contains a particular multiset of tenant VMs, how much
//! bandwidth must be allocated on the subtree's uplink in each direction?*
//! (§4.1 computes this for TAG as Eq. 1 and for VOC in footnote 7.)
//!
//! [`CutModel`] captures exactly that interface, which lets one reservation
//! engine ([`crate::reserve::TenantState`]) serve CloudMirror and every
//! baseline, and lets Table 1 re-price the same placement under different
//! models (the paper's "CM+VOC" row).

use cm_topology::Kbps;

/// A tenant network model that can price any subtree cut.
pub trait CutModel {
    /// Number of tiers (components); external components are included and
    /// report [`CutModel::tier_size`] = 0.
    fn num_tiers(&self) -> usize;

    /// Number of *placeable* VMs of tier `t` (0 for external components).
    fn tier_size(&self, t: usize) -> u32;

    /// Bandwidth that must be allocated on the uplink of a subtree holding
    /// `inside[t]` VMs of each tier, as `(outgoing, incoming)` kbps.
    fn cut_kbps(&self, inside: &[u32]) -> (Kbps, Kbps);

    /// Total placeable VMs across all tiers.
    fn total_vms(&self) -> u64 {
        (0..self.num_tiers())
            .map(|t| self.tier_size(t) as u64)
            .sum()
    }

    /// The per-tier VM counts of a full placement (0 for external tiers).
    fn placeable_counts(&self) -> Vec<u32> {
        (0..self.num_tiers()).map(|t| self.tier_size(t)).collect()
    }

    /// The `(out, in)` bandwidth the tenant needs towards external
    /// components — the cut price of the *fully placed* tenant, which must
    /// be available on every link from its enclosing subtree to the root.
    fn external_demand_kbps(&self) -> (Kbps, Kbps) {
        self.cut_kbps(&self.placeable_counts())
    }

    /// Cut price of a *fully spread* placement of `counts`: each VM alone in
    /// its own subtree, i.e. `Σ_t counts[t] · cut(unit_t)`. This is the
    /// worst case against which colocation savings are measured (§4.2).
    fn cut_spread_kbps(&self, counts: &[u32]) -> (Kbps, Kbps) {
        let mut unit = vec![0u32; self.num_tiers()];
        let mut out = 0u64;
        let mut inc = 0u64;
        for (t, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            unit[t] = 1;
            let (o, i) = self.cut_kbps(&unit);
            unit[t] = 0;
            out += c as u64 * o;
            inc += c as u64 * i;
        }
        (out, inc)
    }

    /// Bandwidth saved (out + in) by colocating the VM multiset `extra`
    /// into a subtree that already holds `existing`, relative to spreading
    /// `extra` one VM per subtree:
    /// `cut(existing) + spread(extra) − cut(existing + extra)`.
    ///
    /// Non-negative by subadditivity of the cut formulas (property-tested).
    fn coloc_saving_kbps(&self, existing: &[u32], extra: &[u32]) -> Kbps {
        let (eo, ei) = self.cut_kbps(existing);
        let (so, si) = self.cut_spread_kbps(extra);
        let combined: Vec<u32> = existing
            .iter()
            .zip(extra.iter())
            .map(|(&a, &b)| a + b)
            .collect();
        let (co, ci) = self.cut_kbps(&combined);
        (eo + so + ei + si).saturating_sub(co + ci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TagBuilder;

    #[test]
    fn spread_cut_is_linear_in_counts() {
        let mut b = TagBuilder::new("t");
        let u = b.tier("u", 10);
        let v = b.tier("v", 10);
        b.edge(u, v, 100, 100).unwrap();
        b.self_loop(v, 40).unwrap();
        let tag = b.build().unwrap();
        let (o1, i1) = tag.cut_spread_kbps(&[1, 0]);
        let (o3, i3) = tag.cut_spread_kbps(&[3, 0]);
        assert_eq!((o3, i3), (3 * o1, 3 * i1));
    }

    #[test]
    fn coloc_saving_for_hose_matches_eq2() {
        // 10-VM hose at SR=100: placing 7 together saves (2*7-10)*100 = 400
        // out and in (relative to 7 spread VMs), i.e. 800 total.
        let mut b = TagBuilder::new("hose");
        let t = b.tier("t", 10);
        b.self_loop(t, 100).unwrap();
        let tag = b.build().unwrap();
        assert_eq!(tag.coloc_saving_kbps(&[0], &[7]), 800);
        // 5 or fewer colocated VMs save nothing (Eq. 2: need > N/2).
        assert_eq!(tag.coloc_saving_kbps(&[0], &[5]), 0);
        assert_eq!(tag.coloc_saving_kbps(&[0], &[3]), 0);
        // Incremental: subtree already has 5, adding 2 more saves.
        assert!(tag.coloc_saving_kbps(&[5], &[2]) > 0);
    }

    #[test]
    fn coloc_saving_for_trunk_matches_eq4() {
        // u(4) --<100,100>--> v(4). Colocating all of u and v zeroes the cut.
        let mut b = TagBuilder::new("trunk");
        let u = b.tier("u", 4);
        let v = b.tier("v", 4);
        b.edge(u, v, 100, 100).unwrap();
        let tag = b.build().unwrap();
        // spread(4,4) = 4*min(100, 4*100) + 4*0(out for v) ... = 400 out,
        // and in = 400; cut(4,4) = 0 → saving 800.
        assert_eq!(tag.coloc_saving_kbps(&[0, 0], &[4, 4]), 800);
        // Half of u alone (2 VMs, receivers all outside) saves nothing:
        // Eq. 6 requires > half of u or of v inside.
        assert_eq!(tag.coloc_saving_kbps(&[0, 0], &[2, 0]), 0);
    }
}
