//! Colocation-saving conditions (§4.2, Eqs. 2–6).
//!
//! The placement algorithm colocates VMs only when doing so provably reduces
//! the bandwidth that must be reserved on the enclosing subtree's uplink.
//! This module holds the closed-form conditions the paper derives:
//!
//! * **Hose saving (Eq. 2)** — colocating VMs of a tier with a self-loop
//!   saves hose bandwidth iff *more than half* the tier's VMs land in the
//!   subtree.
//! * **Trunk saving (Eqs. 3–6)** — colocating VMs of two tiers joined by a
//!   trunk saves bandwidth iff `N^t_X·B_snd + N^t'_X·B_rcv > N^t'·B_rcv`
//!   (Eq. 5); a necessary condition is that more than half of either tier is
//!   inside (Eq. 6). Because Eq. 6 is necessary but not sufficient, the
//!   placement algorithm always verifies the exact saving (Eq. 4) before
//!   committing (§4.2 last paragraph).

use crate::model::{Tag, TagEdge, TierId};
use cm_topology::Kbps;

/// Eq. 2: hose bandwidth saving requires strictly more than half of the
/// tier's `total` VMs inside the subtree.
#[inline]
pub fn hose_saving_possible(total: u32, inside: u32) -> bool {
    2 * inside as u64 > total as u64
}

/// The hose bandwidth (one direction) a tier with self-loop `sr` saves when
/// `inside` of its `total` VMs are colocated, relative to fully spreading
/// them: `max(0, 2·inside − total)·SR`.
#[inline]
pub fn hose_saving_kbps(sr: Kbps, total: u32, inside: u32) -> Kbps {
    let inside = inside.min(total);
    (2 * inside as u64).saturating_sub(total as u64) * sr
}

/// Eq. 6: necessary condition for trunk saving — more than half of `u` or
/// more than half of `v` inside the subtree.
#[inline]
pub fn trunk_saving_possible(nu: u32, iu: u32, nv: u32, iv: u32) -> bool {
    hose_saving_possible(nu, iu) || hose_saving_possible(nv, iv)
}

/// Eqs. 3–4 (generalized): the outgoing trunk bandwidth saved by holding
/// `iu` senders of `u` and `iv` receivers of `v` in the subtree, relative to
/// the worst case where all of `v` is outside:
///
/// ```text
/// B2 − B1 = min(iu·S, Nv·R) − min(iu·S, (Nv−iv)·R)
/// ```
///
/// The paper states Eq. 4 under the balanced assumption `Nu·S = Nv·R`; this
/// form drops that assumption and reduces to Eq. 4 when it holds.
#[inline]
pub fn trunk_saving_kbps(snd: Kbps, rcv: Kbps, iu: u32, nv: u32, iv: u32) -> Kbps {
    let iv = iv.min(nv);
    let b2 = (iu as u64 * snd).min(nv as u64 * rcv);
    let b1 = (iu as u64 * snd).min((nv - iv) as u64 * rcv);
    b2 - b1
}

/// Exact per-edge saving report for a tentative colocation group, used by
/// `FindTiersToColoc` to verify Eq. 4 before colocating (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeSaving {
    /// The edge's sending tier.
    pub from: TierId,
    /// The edge's receiving tier.
    pub to: TierId,
    /// Saved kbps (both directions summed).
    pub saved_kbps: Kbps,
}

/// Compute per-edge colocation savings for placing `counts[t]` VMs of each
/// tier together in one subtree (on top of `existing[t]` already there),
/// evaluating hose edges with Eq. 2's closed form and trunk edges with the
/// exact Eq. 4 check in both directions.
pub fn edge_savings(tag: &Tag, existing: &[u32], counts: &[u32]) -> Vec<EdgeSaving> {
    let mut out = Vec::new();
    for e in tag.edges() {
        let saved = edge_saving(tag, e, existing, counts);
        if saved > 0 {
            out.push(EdgeSaving {
                from: e.from,
                to: e.to,
                saved_kbps: saved,
            });
        }
    }
    out
}

/// The saving (out + in) contributed by a single TAG edge when the subtree's
/// per-tier population grows from `existing` to `existing + counts`.
pub fn edge_saving(tag: &Tag, e: &TagEdge, existing: &[u32], counts: &[u32]) -> Kbps {
    let fi = e.from.index();
    let ti = e.to.index();
    if e.is_self_loop() {
        let n = tag.tier(e.from).size;
        let before = hose_saving_kbps(e.snd_kbps, n, existing[fi]);
        let after = hose_saving_kbps(e.snd_kbps, n, existing[fi] + counts[fi]);
        2 * (after - before) // hose saving applies in both directions
    } else {
        if tag.tier(e.from).external || tag.tier(e.to).external {
            return 0; // external endpoints are never colocated
        }
        let nv = tag.tier(e.to).size;
        let nu = tag.tier(e.from).size;
        let (iu0, iv0) = (existing[fi], existing[ti]);
        let (iu1, iv1) = (iu0 + counts[fi], iv0 + counts[ti]);
        // Outgoing direction saving delta.
        let out = trunk_saving_kbps(e.snd_kbps, e.rcv_kbps, iu1, nv, iv1)
            .saturating_sub(trunk_saving_kbps(e.snd_kbps, e.rcv_kbps, iu0, nv, iv0));
        // Incoming direction: swap roles (senders of `from` outside).
        let inc = trunk_saving_kbps(e.rcv_kbps, e.snd_kbps, iv1, nu, iu1)
            .saturating_sub(trunk_saving_kbps(e.rcv_kbps, e.snd_kbps, iv0, nu, iu0));
        out + inc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TagBuilder;

    #[test]
    fn eq2_boundary() {
        assert!(!hose_saving_possible(10, 5));
        assert!(hose_saving_possible(10, 6));
        assert!(!hose_saving_possible(1, 0));
        assert!(hose_saving_possible(1, 1));
        // Odd sizes: strictly more than half.
        assert!(!hose_saving_possible(7, 3));
        assert!(hose_saving_possible(7, 4));
    }

    #[test]
    fn hose_saving_formula() {
        assert_eq!(hose_saving_kbps(100, 10, 5), 0);
        assert_eq!(hose_saving_kbps(100, 10, 6), 200);
        assert_eq!(hose_saving_kbps(100, 10, 10), 1000);
        // Clamp: inside > total treated as total.
        assert_eq!(hose_saving_kbps(100, 10, 12), 1000);
    }

    #[test]
    fn eq6_necessary_condition() {
        assert!(!trunk_saving_possible(10, 5, 10, 5));
        assert!(trunk_saving_possible(10, 6, 10, 0));
        assert!(trunk_saving_possible(10, 0, 10, 6));
    }

    #[test]
    fn trunk_saving_matches_eq4_balanced() {
        // Balanced case Nu·S = Nv·R: Eq. 4 says saving =
        // max(iu·S − (Nv−iv)·R, 0).
        let (s, r) = (100, 100);
        let (nu, nv) = (10, 10);
        for iu in 0..=nu {
            for iv in 0..=nv {
                let got = trunk_saving_kbps(s, r, iu, nv, iv);
                let eq4 = (iu as u64 * s).saturating_sub((nv - iv) as u64 * r);
                assert_eq!(got, eq4, "iu={iu} iv={iv}");
                // Eq. 6 (necessary): saving > 0 ⇒ more than half inside.
                if got > 0 {
                    assert!(trunk_saving_possible(nu, iu, nv, iv));
                }
            }
        }
    }

    #[test]
    fn eq6_is_not_sufficient() {
        // More than half of u inside but all receivers of v outside with
        // ample receive capacity ⇒ no saving: Eq. 6 holds, Eq. 4 says 0.
        // u: 10 VMs at S=10; v: 10 VMs at R=100 (Nv·R = 1000 ≫ iu·S).
        assert!(trunk_saving_possible(10, 6, 10, 0));
        assert_eq!(trunk_saving_kbps(10, 100, 6, 10, 0), 0);
    }

    #[test]
    fn edge_saving_counts_both_directions() {
        let mut b = TagBuilder::new("t");
        let u = b.tier("u", 4);
        let v = b.tier("v", 4);
        b.edge(u, v, 100, 100).unwrap();
        let tag = b.build().unwrap();
        let e = &tag.edges()[0];
        // All VMs of both tiers colocated: out saving 400, in saving 400.
        assert_eq!(edge_saving(&tag, e, &[0, 0], &[4, 4]), 800);
    }

    #[test]
    fn edge_savings_reports_only_positive() {
        let mut b = TagBuilder::new("t");
        let u = b.tier("u", 10);
        let v = b.tier("v", 10);
        b.edge(u, v, 100, 100).unwrap();
        b.self_loop(v, 50).unwrap();
        let tag = b.build().unwrap();
        // Only 2 VMs of v: below half for hose and trunk ⇒ nothing saved.
        assert!(edge_savings(&tag, &[0, 0], &[0, 2]).is_empty());
        // 8 of v colocated: the hose saves, but the trunk does not — with
        // all senders of u outside, the in-cut equals the spread cost
        // (colocating receivers alone buys nothing, Eq. 4).
        let s = edge_savings(&tag, &[0, 0], &[0, 8]);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].from, v);
        assert_eq!(s[0].to, v);
        // Colocating senders *and* receivers does save on the trunk.
        let s = edge_savings(&tag, &[0, 0], &[8, 8]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn incremental_saving_adds_up() {
        // Placing 8 at once saves the same as 5 then 3 more.
        let mut b = TagBuilder::new("t");
        let u = b.tier("u", 10);
        b.self_loop(u, 70).unwrap();
        let tag = b.build().unwrap();
        let e = &tag.edges()[0];
        let all = edge_saving(&tag, e, &[0], &[8]);
        let step = edge_saving(&tag, e, &[0], &[5]) + edge_saving(&tag, e, &[5], &[3]);
        assert_eq!(all, step);
    }
}
