//! A fast, deterministic hasher for the reservation ledger's hot maps.
//!
//! The per-tenant ledger ([`crate::reserve::TenantState`]) performs many
//! small `NodeId`-keyed map lookups per placement decision; the standard
//! library's DoS-resistant SipHash dominates those lookups. Keys here are
//! dense node indices controlled by the topology — not attacker-chosen — so
//! a multiply-xor finalizer (SplitMix64-style diffusion) is both safe and
//! several times faster. The hasher is also *deterministic* across runs,
//! which keeps every seeded simulation byte-reproducible regardless of
//! `RandomState`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for small integer keys (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

const K: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_mul(K);
    z ^= z >> 29;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 32)
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback: fold 8-byte words (rarely hit — the ledger's
        // keys hash through the fixed-width paths below).
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = mix(self.0, u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = mix(self.0, v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = mix(self.0, v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.0 = mix(self.0, v as u64);
    }
}

/// `HashMap` with the fast deterministic hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with the fast deterministic hasher.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_and_is_deterministic() {
        let mut m: FastMap<u32, u64> = FastMap::default();
        for i in 0..10_000u32 {
            m.insert(i, i as u64 * 3);
        }
        for i in 0..10_000u32 {
            assert_eq!(m.get(&i), Some(&(i as u64 * 3)));
        }
        assert_eq!(m.len(), 10_000);
        // Same insertion sequence → same iteration order (determinism).
        let mut m2: FastMap<u32, u64> = FastMap::default();
        for i in 0..10_000u32 {
            m2.insert(i, i as u64 * 3);
        }
        let a: Vec<_> = m.iter().collect();
        let b: Vec<_> = m2.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_keys_spread() {
        // Dense node indices must not collide into a few buckets: check the
        // low bits of consecutive hashes differ.
        let mut seen = FastSet::default();
        for i in 0..1024u32 {
            let mut h = FastHasher::default();
            h.write_u32(i);
            seen.insert(h.finish() & 0x3FF);
        }
        assert!(
            seen.len() > 512,
            "only {} distinct low-10-bit values",
            seen.len()
        );
    }
}
