//! `pub-doc`: exported items in library crates carry doc comments.
//!
//! CI already builds rustdoc with `-D warnings`, but that only rejects
//! *broken* docs, not *missing* ones. This rule requires every `pub` item
//! in the library crates' source (fn, struct, enum, trait, type, const,
//! static, mod) to have a `///` or `#[doc]` attached. `pub use` re-exports
//! (docs travel with the item) and restricted visibility (`pub(crate)`,
//! `pub(super)`) are exempt, as is test code.

use super::{finding, Rule, PUB_DOC};
use crate::config::{is_test_path, Config};
use crate::diag::Finding;
use crate::pragma::FilePragmas;
use crate::scan::SourceFile;

/// See the module docs.
pub struct PubDoc;

/// Item keywords that may follow `pub` (with optional qualifiers).
const ITEM_HEADS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

impl Rule for PubDoc {
    fn name(&self) -> &'static str {
        PUB_DOC
    }

    fn check(
        &self,
        file: &SourceFile,
        _pragmas: &FilePragmas,
        cfg: &Config,
        out: &mut Vec<Finding>,
    ) {
        let path = file.path_str();
        if is_test_path(&path) || !cfg.pub_doc_prefixes.iter().any(|p| path.starts_with(p)) {
            return;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let Some(item) = pub_item(&line.code) else {
                continue;
            };
            if !has_doc_above(file, idx) {
                out.push(finding(
                    file,
                    idx + 1,
                    PUB_DOC,
                    format!("exported `{item}` has no doc comment"),
                    "every exported item in the library crates documents its \
                     contract (`///` or `#[doc]`); see ANALYSIS.md#pub-doc",
                ));
            }
        }
    }
}

/// If the line declares an exported item, return its head keyword.
fn pub_item(code: &str) -> Option<&'static str> {
    let t = code.trim_start();
    let rest = t.strip_prefix("pub ")?;
    // `pub(crate)` / `pub(super)` never reach here (no space after `pub`),
    // but guard anyway; `pub use` re-exports inherit their item's docs.
    let rest = rest.trim_start();
    if rest.starts_with("use ") {
        return None;
    }
    // Skip qualifiers (`pub const fn`, `pub unsafe trait`, `pub async fn`):
    // `const` is a head only when not followed by `fn`.
    let mut words = rest.split_whitespace().peekable();
    while let Some(w) = words.next() {
        if w == "const" {
            return if words.peek() == Some(&"fn") {
                Some("fn")
            } else {
                Some("const")
            };
        }
        if let Some(h) = ITEM_HEADS.iter().find(|h| **h == w) {
            return Some(h);
        }
        if !matches!(w, "unsafe" | "async" | "extern" | "\"C\"") {
            return None;
        }
    }
    None
}

/// Whether the item at 0-based `idx` has a doc comment above it (skipping
/// attribute lines).
fn has_doc_above(file: &SourceFile, idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let raw = file.lines[i].raw.trim();
        if raw.starts_with("///") || raw.starts_with("#[doc") {
            return true;
        }
        // Attribute lines (and multi-line attribute tails) are transparent.
        if raw.starts_with("#[") || raw.starts_with("#![") || looks_like_attr_tail(file, i) {
            continue;
        }
        return false;
    }
    false
}

/// Heuristic for a line that continues a multi-line attribute opened above.
fn looks_like_attr_tail(file: &SourceFile, idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let raw = file.lines[i].raw.trim();
        if raw.starts_with("#[") {
            return true;
        }
        if !(raw.ends_with(',') || raw.ends_with('(')) {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pragma;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::scan(PathBuf::from("crates/topology/src/tree.rs"), src);
        let p = pragma::parse(&f);
        let mut out = Vec::new();
        PubDoc.check(&f, &p, &Config::cloudmirror(), &mut out);
        out
    }

    #[test]
    fn undocumented_pub_items_fire() {
        let out = run("pub fn naked() {}\npub struct Bare;\n");
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("`fn`"));
        assert!(out[1].message.contains("`struct`"));
    }

    #[test]
    fn documented_restricted_and_reexports_are_fine() {
        let src = "/// Documented.\npub fn ok() {}\n\
                   #[derive(Debug)]\n/// Above the attr.\npub struct S;\n\
                   pub(crate) fn internal() {}\n\
                   pub use other::Thing;\n";
        // Attribute between doc and item is transparent.
        let src2 = "/// Doc.\n#[derive(Debug)]\npub struct T;\n";
        assert!(run(src).is_empty());
        assert!(run(src2).is_empty());
    }

    #[test]
    fn qualifiers_are_recognized() {
        let out = run("pub const fn f() {}\npub unsafe fn g() {}\npub async fn h() {}\n");
        assert_eq!(out.len(), 3);
        assert!(run("/// A.\npub const X: u32 = 1;\n").is_empty());
        assert_eq!(run("pub const X: u32 = 1;\n").len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n pub fn helper() {}\n}\n";
        assert!(run(src).is_empty());
    }
}
