//! `txn-discipline`: every `Topology` mutation flows through the
//! reservation layer.
//!
//! The headline claims of this reproduction — reservation conservation,
//! exact rollback, bit-identical concurrent-vs-serial decisions — all
//! assume that slot and uplink state only changes through
//! `ReservationTxn`'s undo log (`crates/core/src/txn.rs` over
//! `reserve.rs`). A direct call to a mutating `Topology` method anywhere
//! else silently escapes the undo log: rollbacks stop being exact and the
//! dynamic `check_invariants` re-derivation is the only thing left to
//! notice. This rule makes the convention static: mutator calls outside
//! the allowlisted reservation layer (or test code) are findings, and the
//! few sanctioned exceptions (replica replay of committed deltas, fault
//! injection) carry `allow` pragmas whose reasons document *why* they are
//! outside the txn path.

use super::{finding, Rule, TXN_DISCIPLINE};
use crate::config::{is_test_path, Config};
use crate::diag::Finding;
use crate::pragma::FilePragmas;
use crate::scan::SourceFile;

/// See the module docs.
pub struct TxnDiscipline;

impl Rule for TxnDiscipline {
    fn name(&self) -> &'static str {
        TXN_DISCIPLINE
    }

    fn check(
        &self,
        file: &SourceFile,
        _pragmas: &FilePragmas,
        cfg: &Config,
        out: &mut Vec<Finding>,
    ) {
        let path = file.path_str();
        if is_test_path(&path) || cfg.txn_allowlist.iter().any(|p| path.starts_with(p)) {
            return;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for m in &cfg.topology_mutators {
                let dotted = format!(".{m}(");
                let pathed = format!("::{m}(");
                if line.code.contains(&dotted) || line.code.contains(&pathed) {
                    out.push(finding(
                        file,
                        idx + 1,
                        TXN_DISCIPLINE,
                        format!(
                            "direct call to mutating `Topology::{m}` outside the reservation layer"
                        ),
                        "topology mutations must flow through `ReservationTxn` \
                         (crates/core/src/txn.rs) so the undo log stays exact; \
                         see ANALYSIS.md#txn-discipline",
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pragma;
    use std::path::PathBuf;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::scan(PathBuf::from(path), src);
        let p = pragma::parse(&f);
        let mut out = Vec::new();
        TxnDiscipline.check(&f, &p, &Config::cloudmirror(), &mut out);
        out
    }

    #[test]
    fn flags_direct_mutator_calls() {
        let out = run(
            "crates/sim/src/events.rs",
            "fn f(t: &mut Topology) { t.alloc_slots(s, 3).ok(); }\n",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("alloc_slots"));
    }

    #[test]
    fn reservation_layer_and_tests_are_exempt() {
        let src = "fn f(t: &mut Topology) { t.alloc_slots(s, 3).ok(); }\n";
        assert!(run("crates/core/src/reserve.rs", src).is_empty());
        assert!(run("crates/topology/src/tree.rs", src).is_empty());
        assert!(run("tests/placement_invariants.rs", src).is_empty());
        let gated = "#[cfg(test)]\nmod tests {\n fn f(t: &mut Topology) { t.degrade_link(n, 0.5).ok(); }\n}\n";
        assert!(run("crates/sim/src/events.rs", gated).is_empty());
    }

    #[test]
    fn mentions_in_strings_and_comments_do_not_fire() {
        let out = run(
            "crates/sim/src/events.rs",
            "// call t.alloc_slots(s, 3) by hand\nlet m = \"t.release_slots(x, 1)\";\n",
        );
        assert!(out.is_empty());
    }
}
