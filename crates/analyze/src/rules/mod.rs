//! The rule engine: one module per convention, a shared trait, and the
//! stable rule-name registry that pragmas and the dynamic invariant
//! checker (`cm-sim`'s debug sweep) reference.

mod atomic_ordering;
mod float_eq;
mod lock_order;
mod pub_doc;
mod txn;
mod unwrap;

use crate::config::Config;
use crate::diag::Finding;
use crate::pragma::FilePragmas;
use crate::scan::SourceFile;

pub use atomic_ordering::AtomicOrdering;
pub use float_eq::FloatEq;
pub use lock_order::LockOrder;
pub use pub_doc::PubDoc;
pub use txn::TxnDiscipline;
pub use unwrap::NoUnwrapInHotPath;

/// Rule name: topology mutations outside the reservation layer.
pub const TXN_DISCIPLINE: &str = "txn-discipline";
/// Rule name: lock acquisition order violations.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule name: `unwrap()`/`expect(` in hot-path non-test code.
pub const NO_UNWRAP: &str = "no-unwrap-in-hot-path";
/// Rule name: float `==`/`!=` in solver code.
pub const FLOAT_EQ: &str = "float-eq";
/// Rule name: undocumented exported items.
pub const PUB_DOC: &str = "pub-doc";
/// Rule name: weak atomic memory orderings outside test code.
pub const ATOMIC_ORDERING: &str = "atomic-ordering";
/// Meta rule name: malformed pragma (bad syntax, missing reason, unknown rule).
pub const PRAGMA_SYNTAX: &str = "pragma-syntax";
/// Meta rule name: a pragma that suppressed nothing.
pub const PRAGMA_UNUSED: &str = "pragma-unused";

/// Dynamic rule name (reported by `cm-race`, never by this static pass):
/// unsynchronized conflicting accesses found by the happens-before
/// detector over a model-checked schedule.
pub const DATA_RACE: &str = "data-race";
/// Dynamic rule name (reported by `cm-race`): a model-checked schedule
/// whose outcomes diverge from serial in-order execution.
pub const SERIAL_EQUIVALENCE: &str = "serial-equivalence";

/// Every rule name the static engine knows, in report order. The meta
/// rules are last: they police the suppression mechanism itself.
pub const ALL_RULES: [&str; 8] = [
    TXN_DISCIPLINE,
    LOCK_ORDER,
    NO_UNWRAP,
    FLOAT_EQ,
    PUB_DOC,
    ATOMIC_ORDERING,
    PRAGMA_SYNTAX,
    PRAGMA_UNUSED,
];

/// Rules reported only by the dynamic checker (`cm-race`). They share the
/// finding catalog and rendering with the static rules — `lock-order` and
/// `txn-discipline` findings can come from either side — but have no
/// static checker, no fixtures, and cannot be suppressed by pragmas.
pub const DYNAMIC_RULES: [&str; 2] = [DATA_RACE, SERIAL_EQUIVALENCE];

/// A convention check over one scanned file.
pub trait Rule {
    /// Stable rule name (the pragma key).
    fn name(&self) -> &'static str;
    /// Append this rule's findings for `file` (suppression is applied by
    /// the driver afterwards, so rules report unconditionally).
    fn check(&self, file: &SourceFile, pragmas: &FilePragmas, cfg: &Config, out: &mut Vec<Finding>);
}

/// The full rule set, in registry order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(TxnDiscipline),
        Box::new(LockOrder),
        Box::new(NoUnwrapInHotPath),
        Box::new(FloatEq),
        Box::new(PubDoc),
        Box::new(AtomicOrdering),
    ]
}

/// Shared constructor for rule findings.
pub(crate) fn finding(
    file: &SourceFile,
    line: usize,
    rule: &'static str,
    message: String,
    note: &str,
) -> Finding {
    Finding {
        path: file.path_str(),
        line,
        rule,
        message,
        note: note.to_string(),
        snippet: file
            .lines
            .get(line.saturating_sub(1))
            .map(|l| l.raw.trim().to_string())
            .unwrap_or_default(),
    }
}
