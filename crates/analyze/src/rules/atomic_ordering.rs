//! `atomic-ordering`: no atomic memory ordering weaker than `SeqCst` in
//! non-test code.
//!
//! The concurrency story rests on two layers that both assume sequential
//! consistency: the sync shim (`cm_core::sync`) virtualizes atomics under
//! the `model` feature and schedules them as totally-ordered yield
//! points, and `cm-race`'s happens-before detector joins clocks across
//! atomic accesses on the same assumption. A `Relaxed`/`Acquire`/
//! `Release`/`AcqRel` operation is invisible to both — the model would
//! explore orderings the hardware forbids and miss orderings it allows —
//! so the soundness argument is "SeqCst everywhere" and this rule keeps
//! it machine-checked. The rare measured hot-path exception documents
//! itself with an `allow` pragma, which also marks it for the next
//! model-fidelity review.
//!
//! Lexical, like every rule here: any `Ordering::<weak>` path segment in
//! non-test code fires, including in `use` lists (importing a weak
//! ordering is how one sneaks in unqualified). `std::cmp::Ordering`'s
//! variants (`Less`/`Equal`/`Greater`) don't collide with the weak set.

use super::{finding, Rule, ATOMIC_ORDERING};
use crate::config::Config;
use crate::diag::Finding;
use crate::pragma::FilePragmas;
use crate::scan::SourceFile;

/// See the module docs.
pub struct AtomicOrdering;

const WEAK: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

impl Rule for AtomicOrdering {
    fn name(&self) -> &'static str {
        ATOMIC_ORDERING
    }

    fn check(
        &self,
        file: &SourceFile,
        _pragmas: &FilePragmas,
        _cfg: &Config,
        out: &mut Vec<Finding>,
    ) {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for (pos, _) in line.code.match_indices("Ordering::") {
                let tail = &line.code[pos + "Ordering::".len()..];
                let Some(weak) = WEAK.iter().find(|w| {
                    tail.strip_prefix(**w).is_some_and(|rest| {
                        !rest.starts_with(|c: char| c.is_alphanumeric() || c == '_')
                    })
                }) else {
                    continue;
                };
                out.push(finding(
                    file,
                    idx + 1,
                    ATOMIC_ORDERING,
                    format!("weak atomic ordering `Ordering::{weak}` outside test code"),
                    "the sync shim and cm-race's happens-before detector model every \
                     atomic as sequentially consistent, so non-SeqCst orderings void \
                     the model-checking soundness argument; use `Ordering::SeqCst`, \
                     or document the measured exception; see ANALYSIS.md#atomic-ordering",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pragma;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::scan(PathBuf::from("crates/core/src/sync/mod.rs"), src);
        let p = pragma::parse(&f);
        let mut out = Vec::new();
        AtomicOrdering.check(&f, &p, &Config::cloudmirror(), &mut out);
        out
    }

    #[test]
    fn weak_orderings_fire_everywhere_including_imports() {
        assert_eq!(run("x.load(Ordering::Relaxed);\n").len(), 1);
        assert_eq!(run("x.store(1, atomic::Ordering::Release);\n").len(), 1);
        assert_eq!(run("x.swap(1, Ordering::AcqRel);\n").len(), 1);
        assert_eq!(run("use std::sync::atomic::Ordering::Acquire;\n").len(), 1);
    }

    #[test]
    fn seqcst_and_cmp_ordering_stay_silent() {
        assert!(run("x.load(Ordering::SeqCst);\n").is_empty());
        assert!(run("if c == Ordering::Less { }\n").is_empty());
        assert!(run("matches!(o, Ordering::Greater);\n").is_empty());
        // Identifier continuation is not a weak ordering.
        assert!(run("use x::Ordering::Releaser;\n").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.load(Ordering::Relaxed); }\n}\n";
        assert!(run(src).is_empty());
    }
}
