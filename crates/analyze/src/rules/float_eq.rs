//! `float-eq`: no `==`/`!=` between float expressions in solver code.
//!
//! The max-min solver (`fluid.rs`) and its incremental wrapper
//! (`incremental.rs`) make *verdicts* — violation counts, work-conservation
//! checks, warm-start acceptance — from floating-point rates. An exact
//! float comparison there is almost always a latent bug: summation order
//! changes between the warm and cold paths, so equality must go through
//! the module's tolerance helpers (`tol()`, `verify_max_min`). The rare
//! intentional bit-exact identity check (e.g. "did this stored value
//! change at all") documents itself with an `allow` pragma.
//!
//! Without type inference the rule decides "is this operand a float?" from
//! lexical evidence collected file-wide: float literals, `f64`/`f32`
//! annotations on `let`s, params and fields, `let` initializers containing
//! float literals or `as f64`, functions declared `-> f64`, and a small
//! configured list of known float-returning helpers. One floaty operand
//! suffices to flag the comparison.

use super::{finding, Rule, FLOAT_EQ};
use crate::config::Config;
use crate::diag::Finding;
use crate::pragma::FilePragmas;
use crate::scan::SourceFile;
use std::collections::HashSet;

/// See the module docs.
pub struct FloatEq;

impl Rule for FloatEq {
    fn name(&self) -> &'static str {
        FLOAT_EQ
    }

    fn check(
        &self,
        file: &SourceFile,
        _pragmas: &FilePragmas,
        cfg: &Config,
        out: &mut Vec<Finding>,
    ) {
        let path = file.path_str();
        if !cfg.float_eq_files.iter().any(|p| path == *p) {
            return;
        }
        let float_names = collect_float_names(file);
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let code: Vec<char> = line.code.chars().collect();
            for pos in comparison_ops(&code) {
                let lhs = operand_left(&code, pos);
                let rhs = operand_right(&code, pos + 2);
                if is_floaty(&lhs, &float_names, cfg) || is_floaty(&rhs, &float_names, cfg) {
                    let op: String = code[pos..pos + 2].iter().collect();
                    out.push(finding(
                        file,
                        idx + 1,
                        FLOAT_EQ,
                        format!(
                            "float comparison `{}` {op} `{}` in solver code",
                            lhs.trim(),
                            rhs.trim()
                        ),
                        "solver verdicts must use the tolerance helpers (`tol()`, \
                         `verify_max_min`) — exact float equality differs between warm \
                         and cold solve paths; see ANALYSIS.md#float-eq",
                    ));
                }
            }
        }
    }
}

/// Byte positions of top-level `==` / `!=` operators in `code`.
fn comparison_ops(code: &[char]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        let pair = (code[i], code[i + 1]);
        let is_cmp = match pair {
            ('=', '=') => {
                // Not `<=`/`>=`/`!=`/`==`-continuation or `=>`.
                let before_ok = i == 0 || !matches!(code[i - 1], '=' | '!' | '<' | '>');
                let after_ok = code.get(i + 2) != Some(&'=');
                before_ok && after_ok
            }
            ('!', '=') => code.get(i + 2) != Some(&'='),
            _ => false,
        };
        if is_cmp {
            out.push(i);
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Walk left from the operator collecting the comparison's left operand:
/// identifiers, paths, field accesses, and balanced `(…)`/`[…]` groups.
fn operand_left(code: &[char], op: usize) -> String {
    let mut i = op as isize - 1;
    while i >= 0 && code[i as usize] == ' ' {
        i -= 1;
    }
    let end = i;
    while i >= 0 {
        let c = code[i as usize];
        if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' {
            i -= 1;
        } else if c == ')' || c == ']' {
            let open = if c == ')' { '(' } else { '[' };
            let mut depth = 1;
            i -= 1;
            while i >= 0 && depth > 0 {
                if code[i as usize] == c {
                    depth += 1;
                } else if code[i as usize] == open {
                    depth -= 1;
                }
                i -= 1;
            }
        } else {
            break;
        }
    }
    if end < 0 {
        return String::new();
    }
    code[(i + 1) as usize..=end as usize].iter().collect()
}

/// Walk right from just past the operator collecting the right operand.
fn operand_right(code: &[char], mut i: usize) -> String {
    while i < code.len() && code[i] == ' ' {
        i += 1;
    }
    let start = i;
    // Unary minus / reference / deref prefixes.
    while i < code.len() && matches!(code[i], '-' | '&' | '*' | '!') {
        i += 1;
    }
    while i < code.len() {
        let c = code[i];
        if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' {
            i += 1;
        } else if c == '(' || c == '[' {
            let close = if c == '(' { ')' } else { ']' };
            let mut depth = 1;
            i += 1;
            while i < code.len() && depth > 0 {
                if code[i] == c {
                    depth += 1;
                } else if code[i] == close {
                    depth -= 1;
                }
                i += 1;
            }
        } else {
            break;
        }
    }
    code[start..i].iter().collect()
}

/// Whether an operand string is float-typed by lexical evidence.
fn is_floaty(expr: &str, float_names: &HashSet<String>, cfg: &Config) -> bool {
    let e = expr.trim();
    if e.is_empty() {
        return false;
    }
    if e == "f64" || e == "f32" || contains_float_literal(e) {
        return true;
    }
    // Terminal path segment, with call/index suffixes stripped:
    // `self.net.link_cap(l)` → `link_cap`, `used[l]` → `used`.
    if let Some(name) = terminal_name(e) {
        if float_names.contains(&name) || cfg.float_returning.contains(&name.as_str()) {
            return true;
        }
    }
    false
}

/// Whether `e` contains a standalone float literal (`1.0`, `1e-9`, `3f64`).
fn contains_float_literal(e: &str) -> bool {
    let chars: Vec<char> = e.chars().collect();
    for i in 0..chars.len() {
        if !chars[i].is_ascii_digit() {
            continue;
        }
        // Must start a number, not continue an identifier (`x1.y`).
        if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_' || chars[i - 1] == '.') {
            continue;
        }
        let mut j = i;
        while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
            j += 1;
        }
        // Decimal point followed by a digit → float.
        if j + 1 < chars.len() && chars[j] == '.' && chars[j + 1].is_ascii_digit() {
            return true;
        }
        // Exponent form `1e-9` / `2E6`.
        if j < chars.len() && (chars[j] == 'e' || chars[j] == 'E') {
            let k = if matches!(chars.get(j + 1), Some('+') | Some('-')) {
                j + 2
            } else {
                j + 1
            };
            if chars.get(k).is_some_and(|c| c.is_ascii_digit()) {
                return true;
            }
        }
        // Typed suffix `3f64`.
        if e[j..].starts_with("f64") || e[j..].starts_with("f32") {
            return true;
        }
    }
    false
}

/// The last path/field segment of an operand, stripped of trailing
/// call/index groups.
fn terminal_name(e: &str) -> Option<String> {
    let chars: Vec<char> = e.chars().collect();
    let mut i = chars.len() as isize - 1;
    // Strip trailing `(…)` / `[…]` groups.
    while i >= 0 && (chars[i as usize] == ')' || chars[i as usize] == ']') {
        let c = chars[i as usize];
        let open = if c == ')' { '(' } else { '[' };
        let mut depth = 1;
        i -= 1;
        while i >= 0 && depth > 0 {
            if chars[i as usize] == c {
                depth += 1;
            } else if chars[i as usize] == open {
                depth -= 1;
            }
            i -= 1;
        }
    }
    let end = i;
    while i >= 0 && (chars[i as usize].is_alphanumeric() || chars[i as usize] == '_') {
        i -= 1;
    }
    if end < 0 || i == end {
        return None;
    }
    Some(chars[(i + 1) as usize..=end as usize].iter().collect())
}

/// Collect identifiers with lexical float evidence anywhere in the file.
fn collect_float_names(file: &SourceFile) -> HashSet<String> {
    let mut names = HashSet::new();
    for line in &file.lines {
        // Test modules re-bind names freely (`let l = net.link(900.0)`);
        // evidence there must not retype the same name in live code.
        if line.in_test {
            continue;
        }
        let code = &line.code;
        // `name: f64` / `name: &f64` / `name: &mut f32` (params, fields,
        // annotated lets).
        for (pos, _) in code.match_indices(':') {
            let after = code[pos + 1..].trim_start();
            let after = after
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .trim_start();
            if after.starts_with("f64") || after.starts_with("f32") {
                if let Some(name) = ident_before(code, pos) {
                    names.insert(name);
                }
            }
        }
        // `let [mut] name = …;` with float evidence on the right.
        for (pos, _) in code.match_indices("let ") {
            // Whole-word `let` only (`complete` must not match).
            if pos > 0
                && code[..pos]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            let rest = code[pos + 4..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                if let Some(eq) = rest.find('=') {
                    let rhs = &rest[eq + 1..];
                    if contains_float_literal(rhs)
                        || rhs.contains("as f64")
                        || rhs.contains("as f32")
                    {
                        names.insert(name);
                    }
                }
            }
        }
        // `fn name(…) -> f64` on one line.
        if let Some(fn_pos) = code.find("fn ") {
            if code.contains("-> f64") || code.contains("-> f32") {
                let name: String = code[fn_pos + 3..]
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// The identifier ending just before byte `pos` (skipping spaces).
fn ident_before(code: &str, pos: usize) -> Option<String> {
    let chars: Vec<char> = code[..pos].chars().collect();
    let mut i = chars.len() as isize - 1;
    while i >= 0 && chars[i as usize] == ' ' {
        i -= 1;
    }
    let end = i;
    while i >= 0 && (chars[i as usize].is_alphanumeric() || chars[i as usize] == '_') {
        i -= 1;
    }
    if end < 0 || i == end {
        return None;
    }
    Some(chars[(i + 1) as usize..=end as usize].iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pragma;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::scan(PathBuf::from("crates/enforce/src/fluid.rs"), src);
        let p = pragma::parse(&f);
        let mut out = Vec::new();
        FloatEq.check(&f, &p, &Config::cloudmirror(), &mut out);
        out
    }

    #[test]
    fn literal_and_declared_float_comparisons_fire() {
        assert_eq!(run("fn f(x: f64) { if x == 0.0 {} }\n").len(), 1);
        assert_eq!(
            run("fn f(cap_kbps: f64) { if v == cap_kbps {} }\n").len(),
            1
        );
        assert_eq!(run("fn g() { let r = 1.5; if r != s {} }\n").len(), 1);
        assert_eq!(
            run("fn h() { if self.net.link_cap(l) == other {} }\n").len(),
            1
        );
    }

    #[test]
    fn integer_comparisons_stay_silent() {
        assert!(run("fn f(n: usize) { if n == 0 {} }\n").is_empty());
        assert!(run("fn f() { if wcount[l] == 0 {} }\n").is_empty());
        assert!(run("fn f() { if slot != u32::MAX {} }\n").is_empty());
        assert!(run("fn f() { v.position(|&ml| ml == l); }\n").is_empty());
    }

    #[test]
    fn compound_operators_are_not_comparisons() {
        assert!(run("fn f(x: f64) { let y = x <= 1.0 && x >= 0.0; }\n").is_empty());
        assert!(run("fn f(mut x: f64) { x += 1.0; let c = |a| a; }\n").is_empty());
    }

    #[test]
    fn out_of_scope_files_are_skipped() {
        let f = SourceFile::scan(
            PathBuf::from("crates/enforce/src/engine.rs"),
            "fn f(x: f64) { if x == 0.0 {} }\n",
        );
        let p = pragma::parse(&f);
        let mut out = Vec::new();
        FloatEq.check(&f, &p, &Config::cloudmirror(), &mut out);
        assert!(out.is_empty());
    }
}
