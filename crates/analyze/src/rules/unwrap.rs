//! `no-unwrap-in-hot-path`: hot-path crates return typed errors.
//!
//! `cm-core::placement`, `cm-enforce`, and `cm-cluster` sit on the
//! admission/solve hot path of a controller meant to run as a service: a
//! stray panic there takes out the whole admission loop, and `unwrap()`
//! without a message destroys the evidence. Non-test code in those crates
//! must surface failures as `CmError`/`RejectReason`/`TopologyError`
//! values. The escape hatch for genuine invariants ("this key was inserted
//! two lines up") is an `expect("<invariant>")` carrying an `allow` pragma
//! whose reason restates why the invariant holds.

use super::{finding, Rule, NO_UNWRAP};
use crate::config::{is_test_path, Config};
use crate::diag::Finding;
use crate::pragma::FilePragmas;
use crate::scan::SourceFile;

/// See the module docs.
pub struct NoUnwrapInHotPath;

impl Rule for NoUnwrapInHotPath {
    fn name(&self) -> &'static str {
        NO_UNWRAP
    }

    fn check(
        &self,
        file: &SourceFile,
        _pragmas: &FilePragmas,
        cfg: &Config,
        out: &mut Vec<Finding>,
    ) {
        let path = file.path_str();
        if is_test_path(&path) || !cfg.hot_path_prefixes.iter().any(|p| path.starts_with(p)) {
            return;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for what in [".unwrap()", ".expect("] {
                if line.code.contains(what) {
                    out.push(finding(
                        file,
                        idx + 1,
                        NO_UNWRAP,
                        format!("`{what}…` in hot-path non-test code"),
                        "hot-path crates must return typed errors \
                         (`CmError`/`RejectReason`/`TopologyError`); a true invariant \
                         may stay as `expect(\"<invariant>\")` under a pragma whose \
                         reason justifies it; see ANALYSIS.md#no-unwrap-in-hot-path",
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pragma;
    use std::path::PathBuf;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::scan(PathBuf::from(path), src);
        let p = pragma::parse(&f);
        let mut out = Vec::new();
        NoUnwrapInHotPath.check(&f, &p, &Config::cloudmirror(), &mut out);
        out
    }

    #[test]
    fn flags_unwrap_and_expect_in_hot_crates() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); }\n";
        assert_eq!(run("crates/enforce/src/fluid.rs", src).len(), 2);
        assert_eq!(run("crates/cluster/src/lib.rs", src).len(), 2);
        assert_eq!(run("crates/core/src/placement/cm.rs", src).len(), 2);
    }

    #[test]
    fn cold_crates_tests_and_alternatives_are_fine() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(run("crates/topology/src/tree.rs", src).is_empty());
        assert!(run("crates/cluster/src/tests.rs", src).is_empty());
        let ok = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.expect_err(\"no\"); }\n";
        assert!(run("crates/enforce/src/fluid.rs", ok).is_empty());
    }

    #[test]
    fn doc_comment_mentions_do_not_fire() {
        let src = "//! call `b.build().unwrap()` to finish\nfn f() {}\n";
        assert!(run("crates/cluster/src/lib.rs", src).is_empty());
    }
}
