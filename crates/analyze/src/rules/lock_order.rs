//! `lock-order`: lock acquisitions follow a declared, machine-readable
//! order.
//!
//! The concurrent admission engine holds its commit log behind a `Mutex` +
//! `Condvar` sequencer, and the sweep pool guards a work queue plus result
//! slots. Today the discipline is simple; the ROADMAP's "make the
//! concurrent engine actually scale" restructuring is exactly when a
//! second lock appears and a silent inversion becomes a deadlock that only
//! reproduces under load. So files that take locks declare their order in
//! a header the analyzer consumes:
//!
//! ```text
//! // cm-analyze: lock-order(log < slots)
//! ```
//!
//! The rule then checks, per function-ish scope, that (a) every `.lock()`
//! receiver is a declared name, (b) no lock is acquired while a
//! later-ordered guard is still live, and (c) no lock is re-acquired while
//! its own guard may still be live (`std::sync::Mutex` self-deadlocks).
//! Guard liveness is lexical: a `let g = x.lock()…;` binding lives until
//! its scope's brace depth unwinds or `drop(g)`; an unbound acquisition
//! (`x.lock().…` consumed in one statement) dies at end of statement.
//!
//! Enrollment is automatic: any non-test file that lexically takes a
//! guard — a `.lock()` call with a nameable receiver, or `.read()`/
//! `.write()` in a file that mentions `RwLock` — must carry the header;
//! a missing header is itself a finding. The configured
//! [`Config::lock_order_required`] list is a floor on top of that (those
//! files must declare an order even if a refactor temporarily removes
//! their locks). Test code is exempt throughout: `#[cfg(test)]` modules
//! re-lock scratch mutexes freely and never define the file's order.

use super::{finding, Rule, LOCK_ORDER};
use crate::config::Config;
use crate::diag::Finding;
use crate::pragma::FilePragmas;
use crate::scan::SourceFile;

/// See the module docs.
pub struct LockOrder;

#[derive(Debug)]
struct Guard {
    /// Declared lock name (order identity).
    lock: String,
    /// Binding variable, for `drop(var)` matching.
    var: String,
    order: usize,
    /// Brace depth the guard's scope lives at (end-of-binding-line depth);
    /// the guard dies when a line starts shallower than this.
    depth: u32,
    line: usize,
}

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        LOCK_ORDER
    }

    fn check(
        &self,
        file: &SourceFile,
        pragmas: &FilePragmas,
        cfg: &Config,
        out: &mut Vec<Finding>,
    ) {
        let path = file.path_str();
        let required = cfg.lock_order_required.iter().any(|p| path == *p) || takes_guards(file);
        let Some((_, order_names)) = &pragmas.lock_order else {
            if required {
                out.push(finding(
                    file,
                    1,
                    LOCK_ORDER,
                    "file takes locks but declares no `// cm-analyze: lock-order(…)` header"
                        .to_string(),
                    "declare the acquisition order once at the top of the file so \
                     inversions are machine-checked; see ANALYSIS.md#lock-order",
                ));
            }
            return;
        };
        let order_of = |name: &str| order_names.iter().position(|n| n == name);
        let patterns = guard_patterns(file);

        let mut guards: Vec<Guard> = Vec::new();
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let lineno = idx + 1;
            // Scope unwinding: guards bound deeper than this line die.
            guards.retain(|g| g.depth <= line.depth);

            let code = &line.code;
            let mut acqs: Vec<(usize, &str)> = Vec::new();
            for pat in &patterns {
                acqs.extend(code.match_indices(pat).map(|(pos, _)| (pos, *pat)));
            }
            acqs.sort_unstable();
            for (pos, pat) in acqs {
                let Some(name) = receiver_name(code, pos) else {
                    continue;
                };
                // Depth at the acquisition point (braces earlier on this
                // line count); guards from same-line blocks already closed
                // are dead here.
                let cur_depth = end_depth(line.depth, &code[..pos]);
                guards.retain(|g| g.depth <= cur_depth);
                let Some(ord) = order_of(&name) else {
                    out.push(finding(
                        file,
                        lineno,
                        LOCK_ORDER,
                        format!("lock `{name}` is not declared in the lock-order header"),
                        "every Mutex in this file must appear in the \
                         `cm-analyze: lock-order(…)` header; add it in its \
                         acquisition position",
                    ));
                    continue;
                };
                for g in &guards {
                    if g.order == ord {
                        out.push(finding(
                            file,
                            lineno,
                            LOCK_ORDER,
                            format!(
                                "lock `{name}` re-acquired while its guard from line {} may \
                                 still be live (std Mutex self-deadlock)",
                                g.line
                            ),
                            "drop or scope the first guard before re-locking",
                        ));
                    } else if g.order > ord {
                        out.push(finding(
                            file,
                            lineno,
                            LOCK_ORDER,
                            format!(
                                "lock `{name}` acquired while `{}` (line {}) is held — \
                                 inverts declared order `{}`",
                                g.lock,
                                g.line,
                                order_names.join(" < ")
                            ),
                            "acquire locks in header order, or restructure so the \
                             guards do not overlap",
                        ));
                    }
                }
                if let Some(var) = binding_guard(code, pos, pat) {
                    guards.push(Guard {
                        lock: name,
                        var,
                        order: ord,
                        depth: cur_depth,
                        line: lineno,
                    });
                }
            }
            // Explicit drops end guard lifetimes early.
            if code.contains("drop(") {
                guards.retain(|g| !code.contains(&format!("drop({})", g.var)));
            }
        }
    }
}

/// The guard-taking call patterns in play for `file`: `.lock()` always;
/// `.read()`/`.write()` too when the file's non-test code mentions
/// `RwLock` (their no-arg forms are read/write guard acquisitions).
fn guard_patterns(file: &SourceFile) -> Vec<&'static str> {
    if mentions_rwlock(file) {
        vec![".lock()", ".read()", ".write()"]
    } else {
        vec![".lock()"]
    }
}

fn mentions_rwlock(file: &SourceFile) -> bool {
    file.lines
        .iter()
        .any(|l| !l.in_test && l.code.contains("RwLock"))
}

/// Whether any non-test line takes a guard with a nameable receiver —
/// the automatic-enrollment trigger (string literals containing the call
/// patterns have no nameable receiver and stay exempt).
fn takes_guards(file: &SourceFile) -> bool {
    let patterns = guard_patterns(file);
    file.lines.iter().any(|line| {
        !line.in_test
            && patterns.iter().any(|pat| {
                line.code
                    .match_indices(pat)
                    .any(|(pos, _)| receiver_name(&line.code, pos).is_some())
            })
    })
}

/// Extract the receiver's terminal name before `.lock()` at `pos`:
/// `shared.log.lock()` → `log`, `slots[i].lock()` → `slots`.
fn receiver_name(code: &str, pos: usize) -> Option<String> {
    let chars: Vec<char> = code[..pos].chars().collect();
    let mut i = chars.len() as isize - 1;
    // Strip a trailing index group.
    while i >= 0 && chars[i as usize] == ']' {
        let mut depth = 1;
        i -= 1;
        while i >= 0 && depth > 0 {
            if chars[i as usize] == ']' {
                depth += 1;
            } else if chars[i as usize] == '[' {
                depth -= 1;
            }
            i -= 1;
        }
    }
    let end = i;
    while i >= 0 && (chars[i as usize].is_alphanumeric() || chars[i as usize] == '_') {
        i -= 1;
    }
    if end < 0 || i == end {
        return None;
    }
    Some(chars[(i + 1) as usize..=end as usize].iter().collect())
}

/// If the statement binds the guard (`let g = x.lock()[.expect(…)][?];`),
/// return the bound variable name; `None` means the guard is a temporary
/// that dies at end of statement.
fn binding_guard(code: &str, lock_pos: usize, pat: &str) -> Option<String> {
    // The chain after the acquisition may only be expect/unwrap/`?` and
    // then the statement must end — anything else consumes the guard
    // immediately.
    let mut tail = &code[lock_pos + pat.len()..];
    loop {
        let t = tail.trim_start();
        if let Some(rest) = t.strip_prefix(".unwrap()") {
            tail = rest;
        } else if let Some(rest) = t.strip_prefix(".expect(") {
            // Skip the balanced argument.
            let chars: Vec<char> = rest.chars().collect();
            let mut depth = 1;
            let mut j = 0;
            while j < chars.len() && depth > 0 {
                if chars[j] == '(' {
                    depth += 1;
                } else if chars[j] == ')' {
                    depth -= 1;
                }
                j += 1;
            }
            tail = &rest[chars[..j].iter().map(|c| c.len_utf8()).sum::<usize>()..];
        } else if let Some(rest) = t.strip_prefix('?') {
            tail = rest;
        } else {
            tail = t;
            break;
        }
    }
    if !(tail.is_empty() || tail.starts_with(';')) {
        return None;
    }
    // Find the `let [mut] name =` that governs this statement.
    let head = &code[..lock_pos];
    let let_pos = head.rfind("let ")?;
    let after = head[let_pos + 4..].trim_start();
    let after = after.strip_prefix("mut ").unwrap_or(after).trim_start();
    let name: String = after
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    // `let Some(g) = …` / `while let` destructuring: treat as bound with
    // an unknown name — fall back to the receiver name by returning None
    // only when nothing parses.
    if name.is_empty() {
        return None;
    }
    // The `=` must sit between the binding and the lock expression.
    head[let_pos..].contains('=').then_some(name)
}

/// Brace depth after processing `code`, starting from `start`.
fn end_depth(start: u32, code: &str) -> u32 {
    let mut d = start;
    for c in code.chars() {
        if c == '{' {
            d += 1;
        } else if c == '}' {
            d = d.saturating_sub(1);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pragma;
    use std::path::PathBuf;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::scan(PathBuf::from(path), src);
        let p = pragma::parse(&f);
        let mut out = Vec::new();
        LockOrder.check(&f, &p, &Config::cloudmirror(), &mut out);
        out
    }

    const HDR: &str = "// cm-analyze: lock-order(log < slots)\n";

    #[test]
    fn lock_taking_files_are_auto_enrolled() {
        // Configured floor: enrolled even with no locks in sight.
        let out = run("crates/sim/src/parallel.rs", "fn f() {}\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("no `// cm-analyze: lock-order"));
        // Any other file lexically taking a guard is enrolled too.
        let out = run("crates/sim/src/other.rs", "fn f() { q.lock(); }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("no `// cm-analyze: lock-order"));
        // RwLock guard acquisitions count once the type is in play.
        let out = run(
            "crates/sim/src/other.rs",
            "struct S { m: RwLock<u32> }\nfn f(s: &S) { s.m.read(); }\n",
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn lockless_and_test_only_files_are_not_enrolled() {
        assert!(run("crates/sim/src/other.rs", "fn f() { x + 1; }\n").is_empty());
        // String literals mentioning the call have no nameable receiver.
        assert!(run(
            "crates/sim/src/other.rs",
            "fn f() { s.contains(\".lock()\"); }\n"
        )
        .is_empty());
        // Test modules may lock scratch mutexes freely.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let g = m.lock().unwrap(); }\n}\n";
        assert!(run("crates/sim/src/other.rs", src).is_empty());
    }

    #[test]
    fn inversion_while_guard_live_is_flagged() {
        let src = format!(
            "{HDR}fn f() {{\n  let s = slots.lock().expect(\"s\");\n  let l = log.lock().expect(\"l\");\n}}\n"
        );
        let out = run("crates/sim/src/parallel.rs", &src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("inverts declared order"));
    }

    #[test]
    fn ordered_nesting_and_scoped_guards_are_fine() {
        let ok = format!(
            "{HDR}fn f() {{\n  let l = log.lock().expect(\"l\");\n  let s = slots.lock().expect(\"s\");\n}}\n"
        );
        assert!(run("crates/sim/src/parallel.rs", &ok).is_empty());
        let scoped = format!(
            "{HDR}fn f() {{\n  {{ let s = slots.lock().expect(\"s\"); }}\n  let l = log.lock().expect(\"l\");\n}}\n"
        );
        assert!(run("crates/sim/src/parallel.rs", &scoped).is_empty());
    }

    #[test]
    fn temporaries_die_at_end_of_statement() {
        let src = format!(
            "{HDR}fn f() {{\n  let job = slots.lock().expect(\"q\").pop_front();\n  let l = log.lock().expect(\"l\");\n}}\n"
        );
        assert!(run("crates/sim/src/parallel.rs", &src).is_empty());
    }

    #[test]
    fn undeclared_locks_and_self_relock_are_flagged() {
        let src = format!("{HDR}fn f() {{ let g = other.lock(); }}\n");
        let out = run("crates/sim/src/parallel.rs", &src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("not declared"));
        let relock = format!(
            "{HDR}fn f() {{\n  let a = log.lock().expect(\"1\");\n  let b = log.lock().expect(\"2\");\n}}\n"
        );
        let out = run("crates/sim/src/parallel.rs", &relock);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("re-acquired"));
    }

    #[test]
    fn drop_ends_the_guard_early() {
        let src = format!(
            "{HDR}fn f() {{\n  let s = slots.lock().expect(\"s\");\n  drop(s);\n  let l = log.lock().expect(\"l\");\n}}\n"
        );
        assert!(run("crates/sim/src/parallel.rs", &src).is_empty());
    }
}
