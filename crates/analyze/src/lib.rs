//! # cm-analyze
//!
//! Repo-specific static analysis for the CloudMirror workspace: the
//! correctness conventions the reproduction's headline claims rest on —
//! reservation conservation, bit-identical concurrent decisions, exact
//! max-min solves, worst-case survivability — turned into machine-checked,
//! CI-gated rules.
//!
//! The pass is an offline, dependency-free line scanner (no `syn`; the
//! build container has no registry access) with a small rule engine:
//!
//! | rule | convention |
//! |------|------------|
//! | `txn-discipline` | `Topology` mutations only through the reservation layer |
//! | `lock-order` | lock acquisitions follow the declared `lock-order(…)` header |
//! | `no-unwrap-in-hot-path` | no `unwrap()`/`expect(` in hot-path non-test code |
//! | `float-eq` | no float `==`/`!=` in solver code |
//! | `pub-doc` | exported library items carry doc comments |
//! | `pragma-syntax` | suppressions parse and carry a reason |
//! | `pragma-unused` | suppressions actually suppress something |
//!
//! Violations are suppressed per line with
//! `// cm-analyze: allow(<rule>) -- <reason>`; the reason is mandatory and
//! stale pragmas are themselves findings, so the suppression surface stays
//! exactly as large as the justified exceptions. See `ANALYSIS.md` at the
//! workspace root for the full catalog.
//!
//! Run it as `cargo run -p cm-analyze --` (add `--json` for machine
//! output); the process exits non-zero when findings exist, which is what
//! CI gates on.

/// Repo-specific rule configuration: allowlists, hot paths, lock files.
pub mod config;
/// Findings plus their text and JSON renderings.
pub mod diag;
/// Suppression pragmas and machine-readable lock-order headers.
pub mod pragma;
/// The rule implementations and registry.
pub mod rules;
/// The hand-rolled line scanner every rule runs on.
pub mod scan;

pub use config::Config;
pub use diag::Finding;

use scan::SourceFile;
use std::path::{Path, PathBuf};

/// The result of one analysis pass.
#[derive(Debug)]
pub struct Report {
    /// All unsuppressed findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Analyze every workspace source file under `root` with the full rule
/// set. `rule_filter`, when non-empty, restricts execution to the named
/// rules (the pragma meta-rules only run unfiltered, since "unused"
/// cannot be decided under a partial rule set).
pub fn analyze_root(root: &Path, cfg: &Config, rule_filter: &[String]) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(top), root, &mut files)?;
    }
    files.sort();
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(root.join(p))?;
            Ok(SourceFile::scan(p.clone(), &text))
        })
        .collect::<std::io::Result<_>>()?;
    Ok(analyze_sources(&sources, cfg, rule_filter))
}

/// Analyze pre-scanned sources (the fixture tests drive this directly).
pub fn analyze_sources(sources: &[SourceFile], cfg: &Config, rule_filter: &[String]) -> Report {
    let rules = rules::all_rules();
    let active = |name: &str| rule_filter.is_empty() || rule_filter.iter().any(|r| r == name);
    let mut findings = Vec::new();
    for file in sources {
        let pragmas = pragma::parse(file);
        let mut raw = Vec::new();
        for rule in &rules {
            if active(rule.name()) {
                rule.check(file, &pragmas, cfg, &mut raw);
            }
        }
        // Apply suppressions (marking pragmas used), then the meta rules.
        for f in raw {
            if !pragmas.suppresses(file, f.rule, f.line) {
                findings.push(f);
            }
        }
        if rule_filter.is_empty() {
            meta_findings(file, &pragmas, &mut findings);
        }
    }
    findings.sort();
    Report {
        findings,
        files_scanned: sources.len(),
    }
}

/// The pragma meta rules: malformed markers, missing reasons, unknown rule
/// names, and pragmas that suppressed nothing.
fn meta_findings(file: &SourceFile, pragmas: &pragma::FilePragmas, out: &mut Vec<Finding>) {
    for &line in &pragmas.malformed {
        out.push(rules::finding(
            file,
            line,
            rules::PRAGMA_SYNTAX,
            "unparseable `cm-analyze:` marker".to_string(),
            "expected `allow(<rule>[, <rule>]) -- <reason>` or `lock-order(a < b)`",
        ));
    }
    for p in &pragmas.allows {
        for r in &p.rules {
            if !rules::ALL_RULES.contains(&r.as_str()) {
                out.push(rules::finding(
                    file,
                    p.line,
                    rules::PRAGMA_SYNTAX,
                    format!("pragma names unknown rule `{r}`"),
                    "known rules: see `cm-analyze --list-rules`",
                ));
            }
        }
        if !p.has_reason {
            out.push(rules::finding(
                file,
                p.line,
                rules::PRAGMA_SYNTAX,
                "suppression without a reason".to_string(),
                "append ` -- <why this exception is sound>` — unexplained \
                 exemptions defeat the audit trail",
            ));
        } else if !p.used.get() {
            out.push(rules::finding(
                file,
                p.line,
                rules::PRAGMA_UNUSED,
                format!("pragma for `{}` suppresses nothing", p.rules.join(", ")),
                "the code it excused was fixed or moved — delete the pragma",
            ));
        }
    }
}

/// Recursively collect `.rs` files under `dir`, storing root-relative
/// paths. Skips build output, vendored stubs, and the analyzer's own
/// violation fixtures.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(
                name.as_str(),
                "target" | "third_party" | "fixtures" | ".git"
            ) {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` to the first directory
/// holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> SourceFile {
        SourceFile::scan(PathBuf::from(path), text)
    }

    #[test]
    fn suppressed_findings_are_dropped_and_pragma_counts_as_used() {
        let f = src(
            "crates/enforce/src/fluid.rs",
            "/// D.\npub fn f(x: &O) {\n    x.get().expect(\"set by new\"); // cm-analyze: allow(no-unwrap-in-hot-path) -- set in the constructor\n}\n",
        );
        let r = analyze_sources(&[f], &Config::cloudmirror(), &[]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn unused_pragma_is_a_finding() {
        let f = src(
            "crates/enforce/src/fluid.rs",
            "/// D.\npub fn f() {} // cm-analyze: allow(float-eq) -- stale\n",
        );
        let r = analyze_sources(&[f], &Config::cloudmirror(), &[]);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, rules::PRAGMA_UNUSED);
    }

    #[test]
    fn missing_reason_is_a_finding_even_when_suppression_matches() {
        let f = src(
            "crates/enforce/src/fluid.rs",
            "/// D.\npub fn f(x: &O) {\n    x.get().unwrap() // cm-analyze: allow(no-unwrap-in-hot-path)\n}\n",
        );
        let r = analyze_sources(&[f], &Config::cloudmirror(), &[]);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, rules::PRAGMA_SYNTAX);
    }

    #[test]
    fn rule_filter_restricts_and_disables_meta_rules() {
        let f = src(
            "crates/enforce/src/fluid.rs",
            "pub fn f() { x.unwrap(); } // cm-analyze: allow(pub-doc) -- stale\n",
        );
        let r = analyze_sources(
            &[f],
            &Config::cloudmirror(),
            &["no-unwrap-in-hot-path".to_string()],
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, rules::NO_UNWRAP);
    }
}
