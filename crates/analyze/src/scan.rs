//! Hand-rolled Rust line scanner: the lexical substrate every rule runs on.
//!
//! This is deliberately **not** a parser. The rules in this crate are
//! repo-specific convention checks (see `ANALYSIS.md`), and every one of
//! them can be decided from a per-line view of the source once three
//! lexical questions are answered exactly:
//!
//! 1. which bytes are *code* vs comment vs string/char-literal content
//!    (so `".unwrap()"` inside a string or a doc comment never fires a
//!    rule),
//! 2. which lines sit inside a `#[cfg(test)]` item (test code is exempt
//!    from the hot-path rules), and
//! 3. the brace depth at each point (so lock guards can be scoped).
//!
//! The scanner handles nested block comments, string escapes, raw strings
//! (`r#"…"#`), byte strings, and the char-literal/lifetime ambiguity
//! (`'a'` vs `'a`). String and char *contents* are blanked with spaces in
//! the code view — the delimiters survive, so `".expect("` still matches
//! `.expect(` when (and only when) it is real code.

use std::path::PathBuf;

/// One scanned source line: the raw text plus the lexical views of it.
#[derive(Debug)]
pub struct Line {
    /// Original line text (without the trailing newline).
    pub raw: String,
    /// Code-only view: comments removed, string/char contents blanked.
    pub code: String,
    /// Comment text on this line (line + block comment bodies, joined).
    pub comment: String,
    /// Whether this line is inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
    /// Brace depth at the *start* of the line (code braces only).
    pub depth: u32,
}

impl Line {
    /// Whether the line carries no code at all (blank or comment-only) —
    /// used when attaching own-line pragmas to the statement below them.
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// A scanned source file: repo-relative path plus per-line lexical views.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub path: PathBuf,
    /// The scanned lines, in order (line numbers are index + 1).
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Scan `text` into per-line code/comment views with test-region and
    /// brace-depth annotations.
    pub fn scan(path: PathBuf, text: &str) -> SourceFile {
        let mut lines = lex(text);
        mark_test_regions(&mut lines);
        SourceFile { path, lines }
    }

    /// The repo-relative path as a `/`-separated string.
    pub fn path_str(&self) -> String {
        self.path.to_string_lossy().replace('\\', "/")
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    /// Nested block comment depth (Rust block comments nest).
    Block(u32),
    Str,
    /// Raw string with this many `#` in the delimiter.
    RawStr(u32),
}

fn lex(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    let mut depth: u32 = 0;
    for raw in text.lines() {
        let start_depth = depth;
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            match mode {
                Mode::Block(n) => {
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(n + 1);
                        i += 2;
                    } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                        mode = if n == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(n - 1)
                        };
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        code.push(' ');
                        if i + 1 < chars.len() {
                            code.push(' ');
                        }
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' && raw_str_closes(&chars, i, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment: the rest of the line is comment.
                        comment.push_str(&chars[i + 2..].iter().collect::<String>());
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && is_raw_str_start(&chars, i) {
                        // r"…", r#"…"#, br"…", … — consume prefix + hashes.
                        let mut j = i;
                        if chars[j] == 'b' {
                            code.push('b');
                            j += 1;
                        }
                        code.push('r');
                        j += 1;
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            code.push('#');
                            hashes += 1;
                            j += 1;
                        }
                        code.push('"');
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        // Byte literal b'x'.
                        code.push('b');
                        i += 1;
                    } else if c == '\'' {
                        if let Some(end) = char_literal_end(&chars, i) {
                            code.push('\'');
                            for _ in i + 1..end {
                                code.push(' ');
                            }
                            code.push('\'');
                            i = end + 1;
                        } else {
                            // Lifetime: keep the tick, the ident follows.
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        if c == '{' {
                            depth += 1;
                        } else if c == '}' {
                            depth = depth.saturating_sub(1);
                        }
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        // An unterminated normal string at EOL is a syntax error in real
        // Rust; reset to code so one bad line cannot poison the file.
        if mode == Mode::Str {
            mode = Mode::Code;
        }
        out.push(Line {
            raw: raw.to_string(),
            code,
            comment,
            in_test: false,
            depth: start_depth,
        });
    }
    out
}

/// Whether `chars[i..]` starts a raw string literal (`r"`, `r#`, `br"`, `br#`).
fn is_raw_str_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    // Must not be part of a longer identifier (e.g. `for r` / `var`).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Whether the `"` at `chars[i]` closes a raw string with `hashes` hashes.
fn raw_str_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If a char literal starts at `chars[i] == '\''`, return the index of its
/// closing quote; `None` means it is a lifetime tick.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    let next = chars.get(i + 1)?;
    if *next == '\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        while j < chars.len() {
            if chars[j] == '\'' {
                return Some(j);
            }
            j += 1;
        }
        None
    } else if chars.get(i + 2) == Some(&'\'') && *next != '\'' {
        Some(i + 2)
    } else {
        // `'a` / `'static` — a lifetime.
        None
    }
}

/// Mark every line inside a `#[cfg(test)]`-gated item. The attribute arms
/// the marker; the next `{` that opens at or below the attribute's depth
/// starts the region, which ends when the depth returns to its start.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: u32 = 0;
    let mut armed = false;
    let mut region: Option<u32> = None;
    for line in lines.iter_mut() {
        if region.is_some() || (armed && line_mentions_item(&line.code)) {
            line.in_test = true;
        }
        if is_cfg_test(&line.code) {
            armed = true;
            line.in_test = true;
        }
        for c in line.code.chars() {
            if c == '{' {
                if armed && region.is_none() {
                    region = Some(depth);
                    armed = false;
                    line.in_test = true;
                }
                depth += 1;
            } else if c == '}' {
                depth = depth.saturating_sub(1);
                if region == Some(depth) {
                    region = None;
                }
            }
        }
    }
}

fn is_cfg_test(code: &str) -> bool {
    let c = code.replace(' ', "");
    c.contains("#[cfg(test)]") || c.contains("#[cfg(all(test")
}

/// Whether the line looks like an item header (so the gap between
/// `#[cfg(test)]` and its `{` is still marked as test code).
fn line_mentions_item(code: &str) -> bool {
    let t = code.trim_start();
    t.starts_with("mod ")
        || t.starts_with("pub mod ")
        || t.starts_with("fn ")
        || t.starts_with("pub fn ")
        || t.starts_with("use ")
        || t.starts_with("#[")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan(PathBuf::from("test.rs"), text)
    }

    #[test]
    fn strings_are_blanked_but_delimited() {
        let f = scan(r#"let x = v.expect("boom .unwrap() inside");"#);
        assert!(f.lines[0].code.contains(".expect(\""));
        assert!(!f.lines[0].code.contains(".unwrap()"));
    }

    #[test]
    fn line_comments_are_split_out() {
        let f = scan("let a = 1; // trailing .unwrap() note");
        assert_eq!(f.lines[0].code.trim_end(), "let a = 1;");
        assert!(f.lines[0].comment.contains(".unwrap()"));
    }

    #[test]
    fn block_comments_nest_across_lines() {
        let f = scan("/* outer /* inner */ still comment */ let y = 2;");
        assert!(f.lines[0].code.contains("let y = 2;"));
        assert!(!f.lines[0].code.contains("still"));
        let f = scan("/* open\n.unwrap()\n*/ let z = 3;");
        assert!(f.lines[1].code.is_empty());
        assert!(f.lines[2].code.contains("let z = 3;"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let f = scan(r##"let s = r#"raw .unwrap() "quoted""#; let c = '{';"##);
        let code = &f.lines[0].code;
        assert!(!code.contains(".unwrap()"));
        assert!(code.contains("let c = '"));
        // The brace inside the char literal must not affect depth.
        let f2 = scan("let c = '{';\nfn f() {\nlet d = 1;\n}");
        assert_eq!(f2.lines[2].depth, 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].code.contains("&'a str"));
    }

    #[test]
    fn cfg_test_regions_cover_the_module() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let f = scan(src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn depth_tracks_code_braces_only() {
        let f = scan("fn f() {\n  if x { // {{{\n    y();\n  }\n}\n");
        let depths: Vec<u32> = f.lines.iter().map(|l| l.depth).collect();
        assert_eq!(depths, vec![0, 1, 2, 2, 1]);
    }
}
