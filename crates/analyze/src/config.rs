//! Repo-specific configuration: the conventions under check, spelled out.
//!
//! Everything a rule needs to know about *this* workspace lives here —
//! which `Topology` methods mutate reservation state, which modules form
//! the sanctioned reservation layer, which crates are hot-path, which
//! solver files ban float `==`. Keeping the knowledge in one place makes
//! the rules themselves generic line-scanners and makes the config the
//! natural thing to update when the architecture moves.

/// Workspace-specific knowledge consumed by the rules.
#[derive(Debug, Clone)]
pub struct Config {
    /// `Topology` methods that mutate reservation/failure state. Calling
    /// any of these outside [`Config::txn_allowlist`] (or test code) is a
    /// `txn-discipline` violation.
    pub topology_mutators: Vec<&'static str>,
    /// Path prefixes allowed to call the mutators directly: the defining
    /// crate and the undo-log reservation layer.
    pub txn_allowlist: Vec<&'static str>,
    /// Path prefixes whose non-test code must not `unwrap()`/`expect(`.
    pub hot_path_prefixes: Vec<&'static str>,
    /// Exact files where `==`/`!=` between float expressions is banned
    /// (the max-min solver and its incremental wrapper).
    pub float_eq_files: Vec<&'static str>,
    /// Helper fns/methods known to return floats, for operand typing in
    /// `float-eq` (beyond what local declarations reveal).
    pub float_returning: Vec<&'static str>,
    /// Files that take multiple locks and therefore must declare a
    /// `// cm-analyze: lock-order(...)` header.
    pub lock_order_required: Vec<&'static str>,
    /// Path prefixes whose `pub` items must carry doc comments.
    pub pub_doc_prefixes: Vec<&'static str>,
}

impl Config {
    /// The CloudMirror workspace's conventions.
    pub fn cloudmirror() -> Config {
        Config {
            topology_mutators: vec![
                "alloc_slots",
                "release_slots",
                "adjust_uplink",
                "force_adjust_uplink",
                "fail_server",
                "restore_server",
                "degrade_link",
                "restore_link",
                "fail_domain",
                "restore_domain",
            ],
            txn_allowlist: vec![
                // The defining crate: mutators plus their own maintenance.
                "crates/topology/",
                // The reservation layer every placement mutation flows
                // through (ReservationTxn in txn.rs delegates here).
                "crates/core/src/txn.rs",
                "crates/core/src/reserve.rs",
            ],
            hot_path_prefixes: vec![
                "crates/core/src/placement/",
                "crates/enforce/src/",
                "crates/cluster/src/",
            ],
            float_eq_files: vec![
                "crates/enforce/src/fluid.rs",
                "crates/enforce/src/incremental.rs",
            ],
            float_returning: vec![
                "link_cap",
                "tol",
                "abs",
                "sqrt",
                "min",
                "max",
                "as_secs_f64",
            ],
            lock_order_required: vec![
                "crates/core/src/placement/concurrent.rs",
                "crates/sim/src/parallel.rs",
            ],
            pub_doc_prefixes: vec![
                "crates/topology/src/",
                "crates/core/src/",
                "crates/baselines/src/",
                "crates/workloads/src/",
                "crates/enforce/src/",
                "crates/cluster/src/",
                "crates/inference/src/",
                "crates/sim/src/",
                "crates/analyze/src/",
                "crates/race/src/",
                "src/",
            ],
        }
    }
}

/// Whether a repo-relative path is test/dev code (integration tests,
/// benches, examples, fixtures, or an inline `tests.rs` module file).
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/")
        || path.contains("/examples/")
        || path.ends_with("/tests.rs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_paths_are_classified() {
        assert!(is_test_path("tests/foo.rs"));
        assert!(is_test_path("crates/enforce/tests/fluid_differential.rs"));
        assert!(is_test_path("crates/cluster/src/tests.rs"));
        assert!(is_test_path("examples/quickstart.rs"));
        assert!(!is_test_path("crates/enforce/src/fluid.rs"));
    }

    #[test]
    fn cloudmirror_config_is_coherent() {
        let c = Config::cloudmirror();
        assert!(c.topology_mutators.contains(&"alloc_slots"));
        for f in &c.float_eq_files {
            assert!(f.ends_with(".rs"));
        }
    }
}
