//! `cm-analyze` CLI: run the workspace convention checks and gate on the
//! result.
//!
//! ```text
//! cargo run -p cm-analyze --              # human-readable diagnostics
//! cargo run -p cm-analyze -- --json       # machine output for CI
//! cargo run -p cm-analyze -- --rule float-eq --rule pub-doc
//! cargo run -p cm-analyze -- --root /path/to/workspace
//! cargo run -p cm-analyze -- --list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/IO error.

use cm_analyze::{analyze_root, config::Config, diag, find_workspace_root, rules};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut rule_filter: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage("--root needs a path"),
            },
            "--rule" => match args.next() {
                Some(r) => {
                    if !rules::ALL_RULES.contains(&r.as_str()) {
                        return usage(&format!("unknown rule `{r}` (try --list-rules)"));
                    }
                    rule_filter.push(r);
                }
                None => return usage("--rule needs a rule name"),
            },
            "--list-rules" => {
                for r in rules::ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "cm-analyze — repo-specific static analysis (see ANALYSIS.md)\n\n\
                     USAGE: cm-analyze [--json] [--root DIR] [--rule NAME]... [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage("no workspace root found (pass --root)"),
    };

    let t0 = Instant::now();
    let report = match analyze_root(&root, &Config::cloudmirror(), &rule_filter) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cm-analyze: IO error: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = t0.elapsed();

    if json {
        println!(
            "{}",
            diag::render_json(&report.findings, report.files_scanned, elapsed.as_millis())
        );
    } else {
        for f in &report.findings {
            print!("{}", diag::render_text(f));
            println!();
        }
        println!(
            "cm-analyze: {} finding(s) across {} files in {:.0} ms",
            report.findings.len(),
            report.files_scanned,
            elapsed.as_secs_f64() * 1e3
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cm-analyze: {msg}");
    ExitCode::from(2)
}
