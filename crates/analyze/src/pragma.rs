//! Suppression pragmas and machine-readable headers.
//!
//! Two comment forms are recognized (anywhere a comment is legal):
//!
//! * `// cm-analyze: allow(<rule>[, <rule>…]) -- <reason>` — suppress the
//!   named rule(s) on the same line, or — when the pragma sits on a line
//!   with no code — on the next code-carrying line. The ` -- <reason>` is
//!   **mandatory**: a suppression without a recorded justification is
//!   itself a finding ([`crate::rules::PRAGMA_SYNTAX`]), and a pragma that
//!   suppresses nothing is flagged too ([`crate::rules::PRAGMA_UNUSED`]) so
//!   stale exemptions cannot linger after the code they excused is fixed.
//! * `// cm-analyze: lock-order(a < b < …)` — declares the file's lock
//!   acquisition order for the `lock-order` rule.

use crate::scan::SourceFile;

/// One parsed `allow(...)` pragma.
#[derive(Debug)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// Rule names inside `allow(...)`.
    pub rules: Vec<String>,
    /// Whether a ` -- reason` followed the closing paren.
    pub has_reason: bool,
    /// Whether the pragma's own line carries code (trailing pragma) or
    /// stands alone (applies to the next code line).
    pub own_line: bool,
    /// Set when the pragma suppressed at least one finding.
    pub used: std::cell::Cell<bool>,
}

/// All pragmas plus the optional lock-order header of one file.
#[derive(Debug, Default)]
pub struct FilePragmas {
    /// `allow(...)` pragmas in line order.
    pub allows: Vec<Pragma>,
    /// Declared lock names, outermost-first, with the header's line.
    pub lock_order: Option<(usize, Vec<String>)>,
    /// Lines holding a `cm-analyze:` comment that parses as neither form.
    pub malformed: Vec<usize>,
}

const MARKER: &str = "cm-analyze:";

/// Parse every `cm-analyze:` comment in `file`.
pub fn parse(file: &SourceFile) -> FilePragmas {
    let mut out = FilePragmas::default();
    for (idx, line) in file.lines.iter().enumerate() {
        // Doc comments (`///…`, `//!…`) are prose and may legitimately
        // quote the pragma syntax; only plain comments carry pragmas. The
        // scanner strips the leading `//`, so a doc comment's text starts
        // with the third `/` or the `!`.
        if line.comment.starts_with('/') || line.comment.starts_with('!') {
            continue;
        }
        let Some(pos) = line.comment.find(MARKER) else {
            continue;
        };
        let body = line.comment[pos + MARKER.len()..].trim();
        let lineno = idx + 1;
        if let Some(rest) = body.strip_prefix("allow(") {
            let Some(close) = rest.find(')') else {
                out.malformed.push(lineno);
                continue;
            };
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if rules.is_empty() {
                out.malformed.push(lineno);
                continue;
            }
            let tail = rest[close + 1..].trim_start();
            let has_reason = tail
                .strip_prefix("--")
                .is_some_and(|r| !r.trim().is_empty());
            out.allows.push(Pragma {
                line: lineno,
                rules,
                has_reason,
                own_line: line.is_code_blank(),
                used: std::cell::Cell::new(false),
            });
        } else if let Some(rest) = body.strip_prefix("lock-order(") {
            let Some(close) = rest.find(')') else {
                out.malformed.push(lineno);
                continue;
            };
            let names: Vec<String> = rest[..close]
                .split('<')
                .map(|n| n.trim().to_string())
                .filter(|n| !n.is_empty())
                .collect();
            if names.is_empty() || out.lock_order.is_some() {
                out.malformed.push(lineno);
                continue;
            }
            out.lock_order = Some((lineno, names));
        } else {
            out.malformed.push(lineno);
        }
    }
    out
}

impl FilePragmas {
    /// Whether a finding of `rule` at 1-based `line` is suppressed: a
    /// pragma on the same line, or a standalone pragma on the comment-only
    /// line(s) immediately above. Marks the matching pragma used.
    pub fn suppresses(&self, file: &SourceFile, rule: &str, line: usize) -> bool {
        for p in &self.allows {
            if !p.rules.iter().any(|r| r == rule) {
                continue;
            }
            let hit = if p.own_line {
                // Standalone pragma: walk down over comment-only lines to
                // the code line it governs.
                let mut target = p.line; // 1-based index of pragma line
                while target < file.lines.len() && file.lines[target].is_code_blank() {
                    target += 1;
                }
                target + 1 == line || target == line
            } else {
                p.line == line
            };
            if hit {
                p.used.set(true);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan(PathBuf::from("t.rs"), text)
    }

    #[test]
    fn trailing_allow_with_reason() {
        let f =
            scan("x.unwrap(); // cm-analyze: allow(no-unwrap-in-hot-path) -- proven nonempty\n");
        let p = parse(&f);
        assert_eq!(p.allows.len(), 1);
        assert!(p.allows[0].has_reason);
        assert!(!p.allows[0].own_line);
        assert!(p.suppresses(&f, "no-unwrap-in-hot-path", 1));
        assert!(p.allows[0].used.get());
    }

    #[test]
    fn own_line_allow_covers_next_code_line() {
        let f = scan(
            "// cm-analyze: allow(float-eq) -- exact identity check\n// more words\nif a == b {}\n",
        );
        let p = parse(&f);
        assert!(p.allows[0].own_line);
        assert!(p.suppresses(&f, "float-eq", 3));
        assert!(!p.suppresses(&f, "float-eq", 5));
    }

    #[test]
    fn reason_is_required() {
        let f = scan("x.unwrap(); // cm-analyze: allow(no-unwrap-in-hot-path)\n");
        let p = parse(&f);
        assert!(!p.allows[0].has_reason);
    }

    #[test]
    fn lock_order_header_parses() {
        let f = scan("// cm-analyze: lock-order(log < slots)\n");
        let p = parse(&f);
        let (line, names) = p.lock_order.unwrap();
        assert_eq!(line, 1);
        assert_eq!(names, vec!["log", "slots"]);
    }

    #[test]
    fn doc_comments_quoting_the_syntax_are_not_pragmas() {
        let f = scan("/// Use `// cm-analyze: allow(float-eq) -- why`.\n//! See `cm-analyze: lock-order(a < b)`.\n");
        let p = parse(&f);
        assert!(p.allows.is_empty());
        assert!(p.lock_order.is_none());
        assert!(p.malformed.is_empty());
    }

    #[test]
    fn malformed_marker_is_recorded() {
        let f = scan("// cm-analyze: alow(typo) -- oops\n");
        let p = parse(&f);
        assert_eq!(p.malformed, vec![1]);
    }
}
