//! Findings and their rendering: rustc-style text and `--json` output.

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (stable identifier, also the pragma key).
    pub rule: &'static str,
    /// One-line description of the violation.
    pub message: String,
    /// Why the convention exists / how to fix, rendered as a `note:`.
    pub note: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Render one finding in rustc style.
pub fn render_text(f: &Finding) -> String {
    let mut s = String::new();
    s.push_str(&format!("error[{}]: {}\n", f.rule, f.message));
    s.push_str(&format!("  --> {}:{}\n", f.path, f.line));
    s.push_str(&format!("   | {}\n", f.snippet));
    if !f.note.is_empty() {
        s.push_str(&format!("   = note: {}\n", f.note));
    }
    s.push_str(&format!(
        "   = help: fix it, or annotate `// cm-analyze: allow({}) -- <reason>`\n",
        f.rule
    ));
    s
}

/// Render the full report as a JSON object (hand-rolled — no serde in the
/// offline container). Schema:
/// `{"version":1,"files_scanned":N,"elapsed_ms":M,"findings":[{...}]}`.
pub fn render_json(findings: &[Finding], files_scanned: usize, elapsed_ms: u128) -> String {
    let mut s = String::from("{");
    s.push_str("\"version\":1,");
    s.push_str(&format!("\"files_scanned\":{files_scanned},"));
    s.push_str(&format!("\"elapsed_ms\":{elapsed_ms},"));
    s.push_str(&format!("\"finding_count\":{},", findings.len()));
    s.push_str("\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('{');
        s.push_str(&format!("\"rule\":{},", json_str(f.rule)));
        s.push_str(&format!("\"path\":{},", json_str(&f.path)));
        s.push_str(&format!("\"line\":{},", f.line));
        s.push_str(&format!("\"message\":{},", json_str(&f.message)));
        s.push_str(&format!("\"note\":{},", json_str(&f.note)));
        s.push_str(&format!("\"snippet\":{}", json_str(&f.snippet)));
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: "float-eq",
            message: "float `==`".into(),
            note: "use tol()".into(),
            snippet: "if a == b {".into(),
        }
    }

    #[test]
    fn text_has_rule_path_line_and_help() {
        let t = render_text(&finding());
        assert!(t.contains("error[float-eq]"));
        assert!(t.contains("--> crates/x/src/lib.rs:7"));
        assert!(t.contains("allow(float-eq)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut f = finding();
        f.snippet = "say \"hi\"\\".into();
        let j = render_json(&[f], 3, 12);
        assert!(j.contains("\"finding_count\":1"));
        assert!(j.contains("\"files_scanned\":3"));
        assert!(j.contains("say \\\"hi\\\"\\\\"));
    }
}
