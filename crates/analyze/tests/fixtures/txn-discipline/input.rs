/// Releases a departed tenant's slots by poking the topology directly —
/// skipping the reservation ledger, so conservation silently breaks.
pub fn leak_release(topo: &mut Topology, server: NodeId) {
    let _ = topo.release_slots(server, 4);
}

/// The sanctioned shape: route the mutation through a transaction.
pub fn clean_release(txn: &mut ReservationTxn<'_>, server: NodeId) {
    let _ = txn.release(server, 4);
}
