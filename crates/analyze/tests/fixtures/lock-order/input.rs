// cm-analyze: lock-order(queue < slots)

fn inverted(queue: &Mutex<Work>, slots: &[Mutex<Out>]) {
    let s = slots[0].lock().expect("slot");
    let q = queue.lock().expect("queue");
    drop((q, s));
}

fn ordered(queue: &Mutex<Work>, slots: &[Mutex<Out>]) {
    let job = queue.lock().expect("queue").pop_front();
    let mut s = slots[0].lock().expect("slot");
    *s = job;
}

fn undeclared(other: &Mutex<u32>) {
    let g = other.lock().expect("other");
    drop(g);
}
