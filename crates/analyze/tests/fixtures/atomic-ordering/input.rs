use std::sync::atomic::{AtomicUsize, Ordering};

fn bump(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::Relaxed)
}

fn publish(flag: &AtomicUsize) {
    flag.store(1, Ordering::Release);
}

fn seqcst_is_fine(counter: &AtomicUsize) -> usize {
    counter.load(Ordering::SeqCst)
}

fn cmp_ordering_is_not_atomic(a: u32, b: u32) -> bool {
    a.cmp(&b) == std::cmp::Ordering::Less
}

fn excused(head: &AtomicUsize) {
    // cm-analyze: allow(atomic-ordering) -- measured hot loop; release pairs with the acquire in drain()
    head.store(0, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_code_is_exempt(x: &AtomicUsize) -> usize {
        x.load(Ordering::Acquire)
    }
}
