fn fixed_long_ago(a: f64, b: f64) -> bool {
    (a - b).abs() < tol(a) // cm-analyze: allow(float-eq) -- stale: the exact compare was rewritten
}
