/// Hot-path unwrap: a stale cache entry panics the enforcement engine.
fn cached_hops(cache: &HashMap<u64, Vec<u32>>, key: u64) -> Vec<u32> {
    cache.get(&key).unwrap().clone()
}

/// Expects are flagged too; a justified one carries a pragma.
fn first_hop(hops: &[u32]) -> u32 {
    *hops.first().expect("routes are never empty") // cm-analyze: allow(no-unwrap-in-hot-path) -- paths always contain the source uplink
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        build().unwrap();
    }
}
