pub struct Undocumented {
    pub field: u32,
}

/// Documented items pass.
pub fn documented() {}

#[derive(Debug)]
/// Attributes between the doc and the item are fine.
pub enum AlsoDocumented {}

fn private_needs_no_doc() {}
