fn work_conserved(rate: f64, want: f64) -> bool {
    rate == want
}

fn converged(used: &[f64], l: usize) -> bool {
    used[l] != 0.25
}

fn index_compare(slot: u32, other: u32) -> bool {
    slot == other
}
