fn missing_reason(a: f64, b: f64) -> bool {
    a == b // cm-analyze: allow(float-eq)
}

fn unknown_rule(a: f64, b: f64) -> bool {
    a != b // cm-analyze: allow(flot-eq) -- typo never suppresses
}

fn unparseable(a: f64, b: f64) -> bool {
    a == b // cm-analyze: alow(float-eq) -- misspelled marker body
}
