//! The workspace-is-clean gate: the real repository must analyze to zero
//! findings (every violation fixed or pragma-justified), and the pass must
//! stay fast enough to sit in CI without anyone noticing it.

use cm_analyze::{analyze_root, find_workspace_root, Config};
use std::path::Path;
use std::time::Instant;

#[test]
fn workspace_has_zero_findings_and_analyzes_fast() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs from inside the workspace");
    let t0 = Instant::now();
    let report = analyze_root(&root, &Config::cloudmirror(), &[]).expect("workspace readable");
    let elapsed = t0.elapsed();

    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walker break?",
        report.files_scanned
    );
    let rendered: String = report
        .findings
        .iter()
        .map(cm_analyze::diag::render_text)
        .collect();
    assert!(
        report.findings.is_empty(),
        "the workspace must analyze clean; fix or pragma-justify:\n{rendered}"
    );
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "analysis took {:.2}s — the CI budget is 5s",
        elapsed.as_secs_f64()
    );
}
