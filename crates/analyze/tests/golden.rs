//! Golden-diagnostic tests: every rule has a fixture under
//! `tests/fixtures/<rule>/` whose rendered findings must match
//! `expected.txt` byte for byte.
//!
//! Each fixture directory holds:
//!
//! * `input.rs` — a small source file exercising the rule (violations,
//!   near-misses, and suppressions),
//! * `path.txt` — the *virtual* workspace path the file is analyzed under
//!   (rule applicability is path-driven: hot-path prefixes, solver files,
//!   lock-order required files),
//! * `expected.txt` — the concatenated `render_text` output.
//!
//! Regenerate goldens after an intentional diagnostic change with
//! `UPDATE_GOLDENS=1 cargo test -p cm-analyze --test golden`.

use cm_analyze::scan::SourceFile;
use cm_analyze::{analyze_sources, diag, Config};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run_fixture(rule: &str) {
    let dir = fixture_dir().join(rule);
    let input = std::fs::read_to_string(dir.join("input.rs"))
        .unwrap_or_else(|e| panic!("{rule}: no input.rs: {e}"));
    let vpath = std::fs::read_to_string(dir.join("path.txt"))
        .unwrap_or_else(|e| panic!("{rule}: no path.txt: {e}"));
    let file = SourceFile::scan(PathBuf::from(vpath.trim()), &input);
    let report = analyze_sources(&[file], &Config::cloudmirror(), &[]);

    let mut got = String::new();
    for f in &report.findings {
        got.push_str(&diag::render_text(f));
        got.push('\n');
    }
    // Every fixture must actually exercise its rule.
    assert!(
        report.findings.iter().any(|f| f.rule == rule),
        "{rule}: fixture produced no `{rule}` finding:\n{got}"
    );

    let golden = dir.join("expected.txt");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&golden, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("{rule}: no expected.txt (run with UPDATE_GOLDENS=1): {e}"));
    assert_eq!(
        got, want,
        "{rule}: diagnostics drifted from the golden output \
         (UPDATE_GOLDENS=1 to accept)"
    );
}

#[test]
fn golden_txn_discipline() {
    run_fixture("txn-discipline");
}

#[test]
fn golden_lock_order() {
    run_fixture("lock-order");
}

#[test]
fn golden_no_unwrap_in_hot_path() {
    run_fixture("no-unwrap-in-hot-path");
}

#[test]
fn golden_float_eq() {
    run_fixture("float-eq");
}

#[test]
fn golden_pub_doc() {
    run_fixture("pub-doc");
}

#[test]
fn golden_atomic_ordering() {
    run_fixture("atomic-ordering");
}

#[test]
fn golden_pragma_syntax() {
    run_fixture("pragma-syntax");
}

#[test]
fn golden_pragma_unused() {
    run_fixture("pragma-unused");
}

#[test]
fn every_rule_has_a_fixture() {
    for rule in cm_analyze::rules::ALL_RULES {
        assert!(
            fixture_dir().join(rule).join("input.rs").is_file(),
            "rule `{rule}` has no fixture under tests/fixtures/{rule}/"
        );
    }
}
