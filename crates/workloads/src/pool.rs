//! Tenant pools and their statistics.

use cm_core::model::Tag;
use cm_topology::Kbps;
use std::sync::Arc;

/// A pool of tenants with bandwidth in relative units, as sampled by the
/// simulator's arrival process.
///
/// Tenants are held behind [`Arc`] so the simulator can hand a model to a
/// placer ([`Placer::place_shared`](cm_core::placement::Placer)) without
/// deep-cloning it on every arrival.
#[derive(Debug, Clone)]
pub struct TenantPool {
    name: String,
    tenants: Vec<Arc<Tag>>,
}

/// Summary statistics of a pool (used to validate generators against the
/// paper's published numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolStats {
    /// Number of tenants.
    pub count: usize,
    /// Mean tenant size in VMs (the paper's `T_s`).
    pub mean_size: f64,
    /// Largest tenant size.
    pub max_size: u64,
    /// Number of tenants above 200 VMs.
    pub above_200: usize,
    /// Mean number of tiers per tenant.
    pub mean_tiers: f64,
    /// Fraction of total guaranteed bandwidth that is inter-component
    /// (trunk) rather than intra-component (self-loop hose).
    pub inter_component_fraction: f64,
}

impl TenantPool {
    /// Wrap a list of tenants as a pool.
    pub fn new(name: impl Into<String>, tenants: Vec<Tag>) -> Self {
        assert!(!tenants.is_empty(), "a pool needs at least one tenant");
        TenantPool {
            name: name.into(),
            tenants: tenants.into_iter().map(Arc::new).collect(),
        }
    }

    /// Pool name ("bing-like", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenants (relative bandwidth units), as shared handles.
    pub fn tenants(&self) -> &[Arc<Tag>] {
        &self.tenants
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the pool is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Mean tenant size `T_s` in VMs.
    pub fn mean_size(&self) -> f64 {
        let total: u64 = self.tenants.iter().map(|t| t.total_vms()).sum();
        total as f64 / self.tenants.len() as f64
    }

    /// The largest mean per-VM demand over the pool (relative units).
    pub fn max_bvm(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.avg_per_vm_demand_kbps())
            .fold(0.0, f64::max)
    }

    /// §5.1 scaling: return a copy of the pool with every bandwidth value
    /// multiplied so that the tenant with the largest mean per-VM demand
    /// (`B_vm`) hits exactly `bmax` kbps.
    pub fn scaled_to_bmax(&self, bmax: Kbps) -> TenantPool {
        let max_bvm = self.max_bvm();
        assert!(max_bvm > 0.0, "pool carries no bandwidth demand");
        let factor = bmax as f64 / max_bvm;
        TenantPool {
            name: self.name.clone(),
            tenants: self
                .tenants
                .iter()
                .map(|t| Arc::new(t.scaled(factor)))
                .collect(),
        }
    }

    /// Compute the pool's summary statistics.
    pub fn stats(&self) -> PoolStats {
        let count = self.tenants.len();
        let sizes: Vec<u64> = self.tenants.iter().map(|t| t.total_vms()).collect();
        let mean_size = sizes.iter().sum::<u64>() as f64 / count as f64;
        let max_size = sizes.iter().copied().max().unwrap_or(0);
        let above_200 = sizes.iter().filter(|&&s| s > 200).count();
        let mean_tiers = self
            .tenants
            .iter()
            .map(|t| t.internal_tiers().count())
            .sum::<usize>() as f64
            / count as f64;
        let mut inter: u128 = 0;
        let mut total: u128 = 0;
        for t in &self.tenants {
            for e in t.edges() {
                if e.is_self_loop() {
                    let v = t.tier(e.from).size as u128 * e.snd_kbps as u128 / 2;
                    total += v;
                } else {
                    let v = t.trunk_total(e) as u128;
                    inter += v;
                    total += v;
                }
            }
        }
        let inter_component_fraction = if total == 0 {
            0.0
        } else {
            inter as f64 / total as f64
        };
        PoolStats {
            count,
            mean_size,
            max_size,
            above_200,
            mean_tiers,
            inter_component_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::model::TagBuilder;

    fn tiny(name: &str, n: u32, trunk: u64, hose: u64) -> Tag {
        let mut b = TagBuilder::new(name);
        let u = b.tier("u", n);
        let v = b.tier("v", n);
        b.edge(u, v, trunk, trunk).unwrap();
        b.self_loop(v, hose).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stats_compute() {
        let pool = TenantPool::new(
            "test",
            vec![tiny("a", 10, 100, 100), tiny("b", 250, 100, 0)],
        );
        let s = pool.stats();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean_size, (20.0 + 500.0) / 2.0);
        assert_eq!(s.max_size, 500);
        assert_eq!(s.above_200, 1);
        assert_eq!(s.mean_tiers, 2.0);
        // tenant a: trunk 10*100=1000, hose 10*100/2=500;
        // tenant b: trunk 250*100=25000, hose 0.
        let expect = (1000.0 + 25000.0) / (1000.0 + 500.0 + 25000.0);
        assert!((s.inter_component_fraction - expect).abs() < 1e-12);
    }

    #[test]
    fn scaling_hits_bmax_exactly_for_the_peak_tenant() {
        let pool = TenantPool::new("test", vec![tiny("a", 4, 50, 10), tiny("b", 4, 200, 0)]);
        let scaled = pool.scaled_to_bmax(800_000);
        let max_bvm = scaled.max_bvm();
        assert!(
            (max_bvm - 800_000.0).abs() / 800_000.0 < 0.01,
            "got {max_bvm}"
        );
        // Relative ordering is preserved.
        let b0 = scaled.tenants()[0].avg_per_vm_demand_kbps();
        let b1 = scaled.tenants()[1].avg_per_vm_demand_kbps();
        assert!(b1 > b0);
    }
}
