//! The concrete example applications used throughout the paper's figures.

use cm_core::model::{Tag, TagBuilder, TierId};
use cm_topology::Kbps;

/// The three-tier web application of Fig. 2(a): `web -- B1 -- logic -- B2 --
/// db`, with `B3` of database-consistency traffic inside the db tier.
/// All inter-tier edges are symmetric (footnote 6 shorthand).
pub fn three_tier(n_web: u32, n_logic: u32, n_db: u32, b1: Kbps, b2: Kbps, b3: Kbps) -> Tag {
    let mut b = TagBuilder::new("three-tier");
    let web = b.tier("web", n_web);
    let logic = b.tier("logic", n_logic);
    let db = b.tier("db", n_db);
    b.sym_edge(web, logic, b1).expect("valid tiers");
    b.sym_edge(logic, db, b2).expect("valid tiers");
    if b3 > 0 {
        b.self_loop(db, b3).expect("valid tier");
    }
    b.build().expect("three-tier TAG is valid")
}

/// The Storm real-time analytics job of Fig. 3(a): `spout1 → bolt1`,
/// `spout1 → bolt2`, `bolt2 → bolt3`; every component has `s` VMs and each
/// communicating pair moves `b` per VM.
pub fn storm(s: u32, b: Kbps) -> Tag {
    let mut t = TagBuilder::new("storm");
    let spout1 = t.tier("spout1", s);
    let bolt1 = t.tier("bolt1", s);
    let bolt2 = t.tier("bolt2", s);
    let bolt3 = t.tier("bolt3", s);
    t.edge(spout1, bolt1, b, b).expect("valid");
    t.edge(spout1, bolt2, b, b).expect("valid");
    t.edge(bolt2, bolt3, b, b).expect("valid");
    t.build().expect("storm TAG is valid")
}

/// The Fig. 6 rack request: three hose components — A (2 VMs, 4 Mbps),
/// B (2 VMs, 4 Mbps), C (4 VMs, 6 Mbps) — totalling 8 VMs and 40 Mbps.
/// Bandwidths given in kbps for consistency with the rest of the API.
pub fn fig6_request() -> Tag {
    let mut b = TagBuilder::new("fig6");
    let a = b.tier("A", 2);
    let bb = b.tier("B", 2);
    let c = b.tier("C", 4);
    b.self_loop(a, 4_000).expect("valid");
    b.self_loop(bb, 4_000).expect("valid");
    b.self_loop(c, 6_000).expect("valid");
    b.build().expect("fig6 TAG is valid")
}

/// The Fig. 13 enforcement scenario: tier C1 (holding VM `X`) sends to tier
/// C2 (holding VM `Z` and `n_senders` intra-tier senders) with `<B1, B2>`,
/// and C2 carries an intra-tier hose `B2_in`. The paper sets
/// `B1 = B2 = B2_in = 450 Mbps`.
pub fn fig13_scenario(n_senders: u32, b1: Kbps, b2: Kbps, b2_in: Kbps) -> Tag {
    let mut b = TagBuilder::new("fig13");
    let c1 = b.tier("C1", 1);
    let c2 = b.tier("C2", 1 + n_senders);
    b.edge(c1, c2, b1, b2).expect("valid");
    b.self_loop(c2, b2_in).expect("valid");
    b.build().expect("fig13 TAG is valid")
}

/// A MapReduce-style batch job: one component with all-to-all shuffle
/// traffic — a pure hose (the case prior models handle well, §2).
pub fn mapreduce(n: u32, shuffle: Kbps) -> Tag {
    let mut b = TagBuilder::new("mapreduce");
    let w = b.tier("workers", n);
    b.self_loop(w, shuffle).expect("valid");
    b.build().expect("mapreduce TAG is valid")
}

/// Tier ids of [`three_tier`]'s components, for tests and examples.
pub fn three_tier_ids() -> (TierId, TierId, TierId) {
    (TierId(0), TierId(1), TierId(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::CutModel;

    #[test]
    fn three_tier_shape() {
        let t = three_tier(10, 10, 10, 500, 100, 50);
        assert_eq!(t.total_vms(), 30);
        assert_eq!(t.edges().len(), 5); // 2 sym pairs + 1 self-loop
        let (_, _, db) = three_tier_ids();
        assert_eq!(t.self_loop_of(db), Some(50));
    }

    #[test]
    fn three_tier_without_db_loop() {
        let t = three_tier(2, 2, 2, 500, 100, 0);
        assert_eq!(t.edges().len(), 4);
    }

    #[test]
    fn storm_fig3_cut() {
        // Fig. 3(c): {spout1, bolt1} vs {bolt2, bolt3} split needs S·B.
        let s = 10;
        let b = 100;
        let t = storm(s, b);
        let (out, _) = t.cut_kbps(&[s, s, 0, 0]);
        assert_eq!(out, s as u64 * b);
    }

    #[test]
    fn fig6_totals() {
        let t = fig6_request();
        assert_eq!(t.total_vms(), 8);
        // 2·4 + 2·4 + 4·6 = 40 Mbps total demand.
        let total: u64 = t
            .internal_tiers()
            .map(|tier| t.tier(tier).size as u64 * t.self_loop_of(tier).unwrap())
            .sum();
        assert_eq!(total, 40_000);
    }

    #[test]
    fn fig13_shape() {
        let t = fig13_scenario(3, 450_000, 450_000, 450_000);
        assert_eq!(t.total_vms(), 5);
        // Z's guarantees: 450 from C1 plus 450 intra: per-VM rcv = 900 Mbps.
        assert_eq!(t.per_vm_rcv(TierId(1)), 900_000);
    }

    #[test]
    fn mapreduce_is_pure_hose() {
        let t = mapreduce(20, 1000);
        assert_eq!(t.edges().len(), 1);
        assert!(t.edges()[0].is_self_loop());
        assert_eq!(t.cut_kbps(&[10]), (10_000, 10_000));
    }
}
