//! The paper's synthetic mixed workload.
//!
//! §5.1: "a synthetic workload, formed by artificially mixing different
//! application sizes and types (e.g., three tier web services and MapReduce
//! jobs)". We add Storm-style pipelines as a third type, since the paper
//! motivates TAG with them.

use crate::apps;
use crate::pool::TenantPool;
use cm_core::model::Tag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a 60-tenant mixed pool: 50% three-tier web services, 30%
/// MapReduce-like batch jobs, 20% Storm-like pipelines; sizes vary an order
/// of magnitude within each class.
pub fn mixed_pool(seed: u64) -> TenantPool {
    let mut rng = StdRng::seed_from_u64(seed);
    let tenants: Vec<Tag> = (0..60)
        .map(|i| {
            let roll = rng.random_range(0..100);
            if roll < 50 {
                let n = rng.random_range(2..=20u32);
                apps::three_tier(
                    n,
                    n,
                    (n / 2).max(1),
                    rng.random_range(400..1200),
                    rng.random_range(80..300),
                    rng.random_range(20..120),
                )
            } else if roll < 80 {
                apps::mapreduce(rng.random_range(5..=80), rng.random_range(500..2000))
            } else {
                apps::storm(rng.random_range(2..=15), rng.random_range(200..900))
            }
            .renamed(format!("mixed-{i:02}"))
        })
        .collect();
    TenantPool::new("mixed", tenants)
}

/// Rename helper so pool tenants carry unique names.
trait Renamed {
    fn renamed(self, name: String) -> Self;
}

impl Renamed for Tag {
    fn renamed(self, name: String) -> Self {
        self.with_name(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_mixes_types() {
        let pool = mixed_pool(9);
        let s = pool.stats();
        assert_eq!(s.count, 60);
        // Web services (5 edges incl. sym pairs) and batch (1 self-loop)
        // both present.
        let webs = pool
            .tenants()
            .iter()
            .filter(|t| t.edges().len() >= 4)
            .count();
        let batch = pool
            .tenants()
            .iter()
            .filter(|t| t.edges().len() == 1 && t.edges()[0].is_self_loop())
            .count();
        assert!(webs >= 10, "{webs} web tenants");
        assert!(batch >= 5, "{batch} batch tenants");
    }

    #[test]
    fn unique_names() {
        let pool = mixed_pool(2);
        let mut names: Vec<&str> = pool.tenants().iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 60);
    }
}
