//! # cm-workloads
//!
//! Tenant workload generation for the CloudMirror evaluation (§5).
//!
//! The paper's experiments draw from three workloads: an empirical dataset
//! from **bing.com** (Bodík et al. \[11\]), one from **hpcloud.com** (Choreo,
//! LaCurts et al. \[29\]), and a **synthetic** mix of application types. The
//! first two are proprietary; this crate provides seeded synthetic
//! generators that match every statistic the paper publishes about them
//! (see `DESIGN.md` for the substitution argument):
//!
//! * [`bing_like_pool`] — 80 tenants, mean size ≈ 57 VMs, largest exactly
//!   732 VMs, several above 200; tier structure `T ≈ 5, K ≈ 10`; a mix of
//!   linear / star / ring / mesh / batch communication patterns (Fig. 7 of
//!   \[11\]); inter-component traffic dominating (≈ 85–91 % per component).
//! * [`hpcloud_like_pool`] — smaller tenants (2–20 VMs) with dense
//!   mesh/star patterns, following Choreo's published measurements.
//! * [`mixed_pool`] — the paper's synthetic workload: three-tier web
//!   services mixed with MapReduce-style batch jobs and Storm-style
//!   pipelines of varying size.
//!
//! Bandwidth values in the pools are **relative units**, exactly as in the
//! bing dataset ("the bandwidth values in the bing.com workload dataset are
//! relative, not absolute"); [`TenantPool::scaled_to_bmax`] rescales a pool
//! so that the largest tenant's mean per-VM demand `B_vm` equals a target
//! `B_max` (the x-axis of Figs. 7 and 12).
//!
//! [`apps`] holds the concrete example applications the paper uses in its
//! figures (three-tier web app of Fig. 2, Storm job of Fig. 3, the Fig. 6
//! rack request, the Fig. 13 enforcement scenario).

/// The paper's example applications as reusable TAG builders.
pub mod apps;
mod bing;
mod hpcloud;
mod mixed;
mod pool;

pub use bing::bing_like_pool;
pub use hpcloud::hpcloud_like_pool;
pub use mixed::mixed_pool;
pub use pool::{PoolStats, TenantPool};
