//! Synthetic bing.com-like tenant pool.
//!
//! The real dataset (Bodík et al. [11], provided privately to the paper's
//! authors) cannot be redistributed. This generator reproduces every
//! statistic the paper publishes about it:
//!
//! * 80 isolated tenants (management/logging services removed);
//! * mean size `T_s ≈ 57` VMs, "some large tenants over 200 VMs", "the
//!   largest tenant has 732 VMs";
//! * service sizes "from one to a few hundred VMs";
//! * mean tier size `K ≈ 10` and mean tier count `T ≈ 5` ("from the bing
//!   dataset excluding the management services");
//! * "a diverse range of job types (interactive web services or batch
//!   data-processing) and communication patterns (e.g., linear, star, ring,
//!   mesh)", "some have large intra-service demands (similar to
//!   MapReduce)";
//! * inter-component traffic dominating: the per-component inter-component
//!   fraction averages 91 % (85 % excluding management), 37–65 % of total
//!   traffic.
//!
//! Generation is fully deterministic for a given seed.

use crate::pool::TenantPool;
use cm_core::model::{Tag, TagBuilder, TierId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Communication skeleton of one synthetic tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    /// Chain: t0 — t1 — ... — tk.
    Linear,
    /// Hub and spokes: t0 — ti for all i.
    Star,
    /// Cycle: ti — t(i+1 mod k).
    Ring,
    /// Every pair connected.
    Mesh,
    /// One component with a heavy self-loop (MapReduce-like).
    Batch,
}

/// Generate the 80-tenant bing-like pool with the given seed.
///
/// Bandwidths are relative units; scale with
/// [`TenantPool::scaled_to_bmax`].
pub fn bing_like_pool(seed: u64) -> TenantPool {
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = tenant_sizes(&mut rng);
    let tenants: Vec<Tag> = sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            let t = synth_tenant(&mut rng, i, size);
            // Normalize the tenant's mean per-VM demand to a log-uniform
            // fraction of the pool's peak: Fig. 1 shows per-workload demand
            // ranges clustered within roughly one order of magnitude, and
            // the §5.1 B_max scaling only makes sense if tenants' B_vm
            // values are comparable (otherwise the pool degenerates into
            // one heavy tenant and featherweights).
            let cur = t.avg_per_vm_demand_kbps();
            let target = 10_000.0 * log_uniform(&mut rng, 0.35, 1.0);
            t.scaled(target / cur)
        })
        .collect();
    TenantPool::new("bing-like", tenants)
}

/// Sample log-uniformly from `[lo, hi]`.
fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let u: f64 = rng.random_range(0.0..1.0);
    (lo.ln() + u * (hi.ln() - lo.ln())).exp()
}

/// Draw the 80 tenant sizes: one fixed 732-VM giant, three 200–300 VM large
/// tenants, and 76 lognormal-ish small/medium tenants rescaled so that the
/// pool mean lands at ≈ 57 VMs.
fn tenant_sizes(rng: &mut StdRng) -> Vec<u32> {
    const POOL: usize = 80;
    const TARGET_MEAN: f64 = 57.0;
    let mut sizes: Vec<u32> = vec![732];
    for _ in 0..3 {
        sizes.push(rng.random_range(205..300));
    }
    // Lognormal body: median ~18 VMs, heavy right tail clipped at 190.
    let mut body: Vec<f64> = (0..POOL - sizes.len())
        .map(|_| {
            let z = normal_sample(rng);
            (18.0 * (0.9 * z).exp()).clamp(1.0, 190.0)
        })
        .collect();
    // Rescale the body to hit the target pool mean exactly (±rounding).
    let fixed: u32 = sizes.iter().sum();
    let want_body_total = TARGET_MEAN * POOL as f64 - fixed as f64;
    let body_total: f64 = body.iter().sum();
    let f = want_body_total / body_total;
    for v in &mut body {
        *v = (*v * f).max(1.0);
    }
    sizes.extend(body.iter().map(|&v| v.round().max(1.0) as u32));
    sizes
}

/// Standard-normal sample via Box–Muller (avoids a rand_distr dependency).
fn normal_sample(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Lognormal bandwidth factor around 1.0 (relative units).
fn bw_sample(rng: &mut StdRng) -> u64 {
    let z = normal_sample(rng);
    let v = 1_000.0 * (0.7 * z).exp(); // base unit 1000 relative-kbps
    (v.round() as u64).max(10)
}

fn synth_tenant(rng: &mut StdRng, idx: usize, size: u32) -> Tag {
    let pattern = match rng.random_range(0..100) {
        0..25 => Pattern::Linear,
        25..45 => Pattern::Star,
        45..55 => Pattern::Ring,
        55..75 => Pattern::Mesh,
        _ => Pattern::Batch,
    };
    // Tier count: size/K with K ≈ 10 (5..15), at least 1, at most 40.
    let k = rng.random_range(5..15) as f64;
    let tiers = if pattern == Pattern::Batch {
        rng.random_range(1..3)
    } else {
        (((size as f64 / k).round() as u32).clamp(1, 40)).max(1)
    };
    let tier_sizes = partition(rng, size, tiers);
    // A single-component service can only have intra-service traffic.
    let pattern = if tier_sizes.len() == 1 {
        Pattern::Batch
    } else {
        pattern
    };

    let mut b = TagBuilder::new(format!("bing-{idx:02}"));
    let ids: Vec<TierId> = tier_sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| b.tier(format!("svc{i}"), s))
        .collect();

    let t = ids.len();
    match pattern {
        Pattern::Linear => {
            for w in ids.windows(2) {
                b.sym_edge(w[0], w[1], bw_sample(rng)).expect("valid");
            }
        }
        Pattern::Star => {
            for &spoke in &ids[1..] {
                b.sym_edge(ids[0], spoke, bw_sample(rng)).expect("valid");
            }
        }
        Pattern::Ring => {
            if t >= 3 {
                for i in 0..t {
                    b.edge(ids[i], ids[(i + 1) % t], bw_sample(rng), bw_sample(rng))
                        .expect("valid");
                }
            } else if t == 2 {
                b.sym_edge(ids[0], ids[1], bw_sample(rng)).expect("valid");
            }
        }
        Pattern::Mesh => {
            for i in 0..t {
                for j in (i + 1)..t {
                    b.sym_edge(ids[i], ids[j], bw_sample(rng)).expect("valid");
                }
            }
        }
        Pattern::Batch => {
            // Heavy intra-service shuffle, like MapReduce.
            for &id in &ids {
                b.self_loop(id, 3 * bw_sample(rng)).expect("valid");
            }
            if t == 2 {
                b.sym_edge(ids[0], ids[1], bw_sample(rng)).expect("valid");
            }
        }
    }
    // Low-rate intra-tier state traffic on ~30% of non-batch tiers keeps the
    // inter-component fraction near the dataset's 85–91%.
    if pattern != Pattern::Batch {
        for &id in &ids {
            if rng.random_range(0.0..1.0) < 0.3 {
                b.self_loop(id, bw_sample(rng) / 5).expect("valid");
            }
        }
    }
    b.build().expect("generated TAG is valid")
}

/// Partition `total` VMs into `parts` tiers with random weights, min 1 each.
fn partition(rng: &mut StdRng, total: u32, parts: u32) -> Vec<u32> {
    let parts = parts.min(total).max(1);
    let weights: Vec<f64> = (0..parts).map(|_| rng.random_range(0.4..1.6)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut sizes: Vec<u32> = weights
        .iter()
        .map(|w| ((w / wsum) * total as f64).floor().max(1.0) as u32)
        .collect();
    // Fix rounding drift.
    let mut diff = total as i64 - sizes.iter().map(|&s| s as i64).sum::<i64>();
    let mut i = 0;
    while diff != 0 {
        let idx = i % sizes.len();
        if diff > 0 {
            sizes[idx] += 1;
            diff -= 1;
        } else if sizes[idx] > 1 {
            sizes[idx] -= 1;
            diff += 1;
        }
        i += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_matches_published_statistics() {
        let pool = bing_like_pool(42);
        let s = pool.stats();
        assert_eq!(s.count, 80);
        assert_eq!(s.max_size, 732, "largest tenant has 732 VMs");
        assert!(s.above_200 >= 3, "some large tenants over 200 VMs");
        assert!(
            (s.mean_size - 57.0).abs() < 4.0,
            "mean size ≈ 57, got {}",
            s.mean_size
        );
        assert!(
            s.mean_tiers >= 3.0 && s.mean_tiers <= 8.0,
            "T ≈ 5, got {}",
            s.mean_tiers
        );
        assert!(
            s.inter_component_fraction > 0.5,
            "inter-component traffic dominates, got {}",
            s.inter_component_fraction
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = bing_like_pool(7);
        let b = bing_like_pool(7);
        for (x, y) in a.tenants().iter().zip(b.tenants()) {
            assert_eq!(x, y);
        }
        let c = bing_like_pool(8);
        assert!(a.tenants().iter().zip(c.tenants()).any(|(x, y)| x != y));
    }

    #[test]
    fn every_tenant_is_well_formed() {
        let pool = bing_like_pool(1);
        for t in pool.tenants() {
            assert!(t.total_vms() >= 1);
            assert!(t.avg_per_vm_demand_kbps() > 0.0, "tenant {}", t.name());
            // No external components in the bing pool (isolated tenants).
            assert!(!t.has_external_edges());
        }
    }

    #[test]
    fn partition_sums_and_floors() {
        let mut rng = StdRng::seed_from_u64(0);
        for total in [1u32, 2, 7, 57, 732] {
            for parts in [1u32, 2, 5, 13] {
                let p = partition(&mut rng, total, parts);
                assert_eq!(p.iter().sum::<u32>(), total);
                assert!(p.iter().all(|&s| s >= 1));
                assert_eq!(p.len() as u32, parts.min(total));
            }
        }
    }

    #[test]
    fn sizes_range_one_to_few_hundred() {
        let pool = bing_like_pool(3);
        let min = pool.tenants().iter().map(|t| t.total_vms()).min().unwrap();
        assert!((1..=20).contains(&min));
    }
}
