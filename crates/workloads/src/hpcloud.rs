//! Synthetic hpcloud.com-like tenant pool.
//!
//! Choreo (LaCurts et al., IMC 2013 [29]) measured HP Cloud applications:
//! small tenants (typically under 20 VMs) with dense but skewed pairwise
//! traffic — "a small number of VM pairs account for a large fraction of
//! the traffic". The paper only states its hpcloud results "yielded results
//! similar to Table 1", so this pool exists to reproduce that
//! similarity check.

use crate::pool::TenantPool;
use cm_core::model::{Tag, TagBuilder, TierId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a 40-tenant hpcloud-like pool: sizes 2–20 VMs, 1–4 tiers,
/// mesh/star patterns with skewed bandwidths (an 80/20-style split between
/// heavy and light edges).
pub fn hpcloud_like_pool(seed: u64) -> TenantPool {
    let mut rng = StdRng::seed_from_u64(seed);
    let tenants: Vec<Tag> = (0..40)
        .map(|i| {
            let size = rng.random_range(2..=20u32);
            synth(&mut rng, i, size)
        })
        .collect();
    TenantPool::new("hpcloud-like", tenants)
}

fn synth(rng: &mut StdRng, idx: usize, size: u32) -> Tag {
    let tiers = rng.random_range(1..=4u32).min(size);
    let mut remaining = size;
    let mut b = TagBuilder::new(format!("hpc-{idx:02}"));
    let mut ids: Vec<TierId> = Vec::new();
    for i in 0..tiers {
        let left = tiers - i;
        let s = if left == 1 {
            remaining
        } else {
            rng.random_range(1..=(remaining - (left - 1)).max(1))
        };
        remaining -= s;
        ids.push(b.tier(format!("t{i}"), s));
    }
    // Skewed edge weights: 20% of edges carry 5× bandwidth.
    let bw = |rng: &mut StdRng| -> u64 {
        let base = rng.random_range(100..1000u64);
        if rng.random_range(0.0..1.0) < 0.2 {
            base * 5
        } else {
            base
        }
    };
    if ids.len() == 1 {
        let sr = bw(rng);
        b.self_loop(ids[0], sr).expect("valid");
    } else if rng.random_range(0.0..1.0) < 0.5 {
        // Mesh.
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let w = bw(rng);
                b.sym_edge(ids[i], ids[j], w).expect("valid");
            }
        }
    } else {
        // Star.
        for i in 1..ids.len() {
            let w = bw(rng);
            b.sym_edge(ids[0], ids[i], w).expect("valid");
        }
    }
    b.build().expect("generated TAG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_shape() {
        let pool = hpcloud_like_pool(11);
        let s = pool.stats();
        assert_eq!(s.count, 40);
        assert!(s.max_size <= 20);
        assert!(s.mean_size >= 2.0 && s.mean_size <= 20.0);
        for t in pool.tenants() {
            assert!(t.total_vms() >= 2 || t.edges()[0].is_self_loop());
            assert!(t.avg_per_vm_demand_kbps() > 0.0);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            hpcloud_like_pool(5).tenants(),
            hpcloud_like_pool(5).tenants()
        );
    }
}
