//! Per-VM feature vectors and the similarity projection graph (§3).
//!
//! "For each VM, a feature vector is constructed based ... on the VM-to-VM
//! bandwidth weighted traffic matrix. The feature vector includes the VM's
//! row and column entries, i.e., both outgoing and incoming traffic, and
//! similarity is computed as the angular distance between vectors."

use crate::trace::TrafficTrace;

/// Build the `n × n` similarity matrix between VMs: cosine-of-angle
/// similarity of their (row ‖ column) feature vectors over the time-mean
/// traffic matrix, mapped through the angular distance
/// `1 − 2·acos(cos θ)/π` so that 1 = identical direction, 0 = orthogonal.
///
/// To keep VMs of the same tier similar *to each other*, each VM's own
/// entries towards the compared VM are zeroed pairwise (two replicas that
/// talk to the same peers but not to each other should still match) —
/// the standard structural-equivalence convention.
pub fn feature_similarity(trace: &TrafficTrace) -> Vec<f64> {
    let n = trace.num_vms();
    let m = trace.mean_matrix();
    let mut sim = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = pair_similarity(&m, n, i, j);
            sim[i * n + j] = s;
            sim[j * n + i] = s;
        }
    }
    sim
}

fn pair_similarity(m: &[f64], n: usize, a: usize, b: usize) -> f64 {
    // Feature of VM x, excluding the a↔b coordinates (structural
    // equivalence): [row_x ‖ col_x].
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for k in 0..n {
        if k == a || k == b {
            continue;
        }
        let (ra, rb) = (m[a * n + k], m[b * n + k]);
        let (ca, cb) = (m[k * n + a], m[k * n + b]);
        dot += ra * rb + ca * cb;
        na += ra * ra + ca * ca;
        nb += rb * rb + cb * cb;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let cos = (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0);
    1.0 - 2.0 * cos.acos() / std::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_are_similar_even_without_mutual_traffic() {
        // VMs 0 and 1 both send to 2 and receive from 3; they never talk to
        // each other — classic load-balanced replicas.
        let mut m = vec![0.0; 16];
        m[2] = 10.0; // 0 -> 2
        m[4 + 2] = 10.0; // 1 -> 2
        m[12] = 5.0; // 3 -> 0
        m[12 + 1] = 5.0; // 3 -> 1
        let t = TrafficTrace::new(4, vec![m]);
        let sim = feature_similarity(&t);
        assert!(sim[1] > 0.99, "replicas: {}", sim[1]);
        // A replica and its server are dissimilar.
        assert!(sim[2] < 0.5, "replica vs server: {}", sim[2]);
    }

    #[test]
    fn symmetric_and_zero_diagonal() {
        let m = vec![
            0.0, 1.0, 2.0, //
            3.0, 0.0, 4.0, //
            5.0, 6.0, 0.0,
        ];
        let t = TrafficTrace::new(3, vec![m]);
        let sim = feature_similarity(&t);
        for i in 0..3 {
            assert_eq!(sim[i * 3 + i], 0.0);
            for j in 0..3 {
                assert_eq!(sim[i * 3 + j], sim[j * 3 + i]);
            }
        }
    }

    #[test]
    fn silent_vms_have_zero_similarity() {
        let t = TrafficTrace::new(2, vec![vec![0.0; 4]]);
        let sim = feature_similarity(&t);
        assert!(sim.iter().all(|&v| v == 0.0));
    }
}
