//! VM-to-VM traffic traces.

/// A time series of `n × n` traffic matrices (kbps, row = sender,
/// column = receiver), the raw input of TAG inference.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficTrace {
    n: usize,
    /// Row-major `n × n` matrices, one per measurement interval.
    snapshots: Vec<Vec<f64>>,
}

impl TrafficTrace {
    /// Create a trace over `n` VMs from row-major snapshots.
    ///
    /// # Panics
    /// Panics when a snapshot has the wrong dimension or negative entries.
    pub fn new(n: usize, snapshots: Vec<Vec<f64>>) -> Self {
        for s in &snapshots {
            assert_eq!(s.len(), n * n, "snapshot must be n×n row-major");
            assert!(s.iter().all(|&v| v >= 0.0), "traffic must be >= 0");
        }
        TrafficTrace { n, snapshots }
    }

    /// Number of VMs.
    pub fn num_vms(&self) -> usize {
        self.n
    }

    /// Number of snapshots.
    pub fn num_snapshots(&self) -> usize {
        self.snapshots.len()
    }

    /// One snapshot as a row-major slice.
    pub fn snapshot(&self, k: usize) -> &[f64] {
        &self.snapshots[k]
    }

    /// Traffic `i → j` in snapshot `k`.
    #[inline]
    pub fn at(&self, k: usize, i: usize, j: usize) -> f64 {
        self.snapshots[k][i * self.n + j]
    }

    /// The element-wise time-average matrix (row-major).
    pub fn mean_matrix(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.n * self.n];
        if self.snapshots.is_empty() {
            return m;
        }
        for s in &self.snapshots {
            for (acc, &v) in m.iter_mut().zip(s) {
                *acc += v;
            }
        }
        let k = self.snapshots.len() as f64;
        for v in &mut m {
            *v /= k;
        }
        m
    }

    /// Peak over time of the aggregate traffic from VM set `a` to VM set
    /// `b` (the "peak of the sum", which statistical multiplexing makes
    /// smaller than the sum of per-pair peaks).
    pub fn peak_group_traffic(&self, a: &[usize], b: &[usize]) -> f64 {
        self.snapshots
            .iter()
            .map(|s| {
                a.iter()
                    .flat_map(|&i| b.iter().map(move |&j| (i, j)))
                    .filter(|(i, j)| i != j)
                    .map(|(i, j)| s[i * self.n + j])
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Sum over time-mean of all entries (total traced traffic).
    pub fn total_mean_traffic(&self) -> f64 {
        self.mean_matrix().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = TrafficTrace::new(2, vec![vec![0.0, 1.0, 2.0, 0.0], vec![0.0, 3.0, 4.0, 0.0]]);
        assert_eq!(t.num_vms(), 2);
        assert_eq!(t.num_snapshots(), 2);
        assert_eq!(t.at(0, 0, 1), 1.0);
        assert_eq!(t.at(1, 1, 0), 4.0);
        assert_eq!(t.mean_matrix(), vec![0.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn peak_of_sum_vs_sum_of_peaks() {
        // Load-balancing flips traffic between two destinations; the peak
        // of the sum (3.0) is below the sum of per-pair peaks (3+3=6).
        let t = TrafficTrace::new(
            3,
            vec![
                vec![0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                vec![0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            ],
        );
        assert_eq!(t.peak_group_traffic(&[0], &[1, 2]), 3.0);
    }

    #[test]
    #[should_panic(expected = "n×n")]
    fn dimension_checked() {
        TrafficTrace::new(2, vec![vec![0.0; 3]]);
    }
}
