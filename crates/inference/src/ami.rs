//! Adjusted Mutual Information (Vinh, Epps & Bailey, JMLR 2010 — the
//! paper's ref [37]).
//!
//! AMI corrects mutual information between two clusterings for chance
//! agreement: 0 for independent labelings, 1 for identical ones. We use
//! the arithmetic-mean normalizer (`AMI_sum`), the common default.

/// Adjusted mutual information between two labelings of the same `n`
/// items. Labels may be arbitrary `usize`s.
///
/// # Panics
/// Panics when the labelings have different lengths or are empty.
pub fn adjusted_mutual_information(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same items");
    assert!(!a.is_empty(), "labelings must be non-empty");
    let n = a.len();

    let ka = densify(a);
    let kb = densify(b);
    let ra = *ka.iter().max().unwrap() + 1;
    let rb = *kb.iter().max().unwrap() + 1;

    // Contingency table.
    let mut cont = vec![0usize; ra * rb];
    for (&x, &y) in ka.iter().zip(&kb) {
        cont[x * rb + y] += 1;
    }
    let ai: Vec<usize> = (0..ra)
        .map(|i| (0..rb).map(|j| cont[i * rb + j]).sum())
        .collect();
    let bj: Vec<usize> = (0..rb)
        .map(|j| (0..ra).map(|i| cont[i * rb + j]).sum())
        .collect();

    let nf = n as f64;
    let mi: f64 = cont
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(idx, &c)| {
            let (i, j) = (idx / rb, idx % rb);
            let p = c as f64 / nf;
            p * ((nf * c as f64) / (ai[i] as f64 * bj[j] as f64)).ln()
        })
        .sum();
    let h = |marginal: &[usize]| -> f64 {
        marginal
            .iter()
            .filter(|&&x| x > 0)
            .map(|&x| {
                let p = x as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (h(&ai), h(&bj));
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both trivial clusterings: identical by convention
    }

    let emi = expected_mi(&ai, &bj, n);
    let denom = 0.5 * (ha + hb) - emi;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    ((mi - emi) / denom).clamp(-1.0, 1.0)
}

fn densify(labels: &[usize]) -> Vec<usize> {
    let mut map = std::collections::HashMap::new();
    let mut next = 0usize;
    labels
        .iter()
        .map(|&l| {
            *map.entry(l).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        })
        .collect()
}

/// Expected MI under the hypergeometric null model (Vinh et al., Eq. 24a).
fn expected_mi(ai: &[usize], bj: &[usize], n: usize) -> f64 {
    let lf = ln_factorials(n);
    let nf = n as f64;
    let mut emi = 0.0;
    for &a in ai {
        if a == 0 {
            continue;
        }
        for &b in bj {
            if b == 0 {
                continue;
            }
            let lo = 1.max((a + b).saturating_sub(n));
            let hi = a.min(b);
            for nij in lo..=hi {
                let term = nij as f64 / nf * ((nf * nij as f64) / (a as f64 * b as f64)).ln();
                // P(nij) = a! b! (n−a)! (n−b)! / (n! nij! (a−nij)! (b−nij)! (n−a−b+nij)!)
                let logp = lf[a] + lf[b] + lf[n - a] + lf[n - b]
                    - lf[n]
                    - lf[nij]
                    - lf[a - nij]
                    - lf[b - nij]
                    - lf[n + nij - a - b]; // nij ≥ a+b−n by the loop bound
                emi += term * logp.exp();
            }
        }
    }
    emi
}

fn ln_factorials(n: usize) -> Vec<f64> {
    let mut lf = vec![0.0; n + 1];
    for i in 2..=n {
        lf[i] = lf[i - 1] + (i as f64).ln();
    }
    lf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_clusterings_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_mutual_information(&a, &a) - 1.0).abs() < 1e-9);
        // Label permutation is still identical.
        let b = vec![5, 5, 9, 9, 7, 7];
        assert!((adjusted_mutual_information(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_clusterings_score_near_zero() {
        // A perfectly orthogonal split has MI = 0 exactly; after chance
        // correction AMI lands at or slightly below zero (AMI < 0 means
        // "worse than chance", which orthogonality is).
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let ami = adjusted_mutual_information(&a, &b);
        assert!(ami < 0.05 && ami > -0.5, "got {ami}");
    }

    #[test]
    fn partial_agreement_is_between() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1]; // one item misplaced
        let ami = adjusted_mutual_information(&a, &b);
        assert!(ami > 0.1 && ami < 1.0, "got {ami}");
    }

    #[test]
    fn trivial_single_cluster_convention() {
        let a = vec![0, 0, 0];
        assert_eq!(adjusted_mutual_information(&a, &a), 1.0);
        // One trivial vs a real split: chance-level agreement → ~0.
        let b = vec![0, 1, 2];
        let ami = adjusted_mutual_information(&a, &b);
        assert!(ami.abs() < 1e-9, "got {ami}");
    }

    #[test]
    fn symmetric() {
        let a = vec![0, 0, 1, 1, 2, 2, 2];
        let b = vec![0, 1, 1, 1, 2, 0, 2];
        let x = adjusted_mutual_information(&a, &b);
        let y = adjusted_mutual_information(&b, &a);
        assert!((x - y).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn length_mismatch_panics() {
        adjusted_mutual_information(&[0, 1], &[0]);
    }
}
