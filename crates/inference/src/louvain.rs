//! Louvain community detection (Blondel et al. 2008, the paper's ref [35]).
//!
//! Standard two-phase modularity maximization on a dense weighted graph:
//! local moving (greedily relocate nodes to the neighbouring community with
//! the best modularity gain) followed by graph aggregation, repeated until
//! modularity stops improving. Deterministic: nodes are visited in index
//! order.

/// Cluster a dense weighted adjacency matrix (`n × n`, symmetric,
/// self-weights ignored) into communities; returns one community label per
/// node (labels are dense, starting at 0).
pub fn louvain(n: usize, weights: &[f64]) -> Vec<usize> {
    assert_eq!(weights.len(), n * n);
    if n == 0 {
        return Vec::new();
    }
    // Current partition over the ORIGINAL nodes.
    let mut node_comm: Vec<usize> = (0..n).collect();
    // The working (aggregated) graph.
    let mut g_n = n;
    let mut g_w: Vec<f64> = weights.to_vec();
    for i in 0..n {
        g_w[i * n + i] = 0.0; // ignore self-similarity
    }
    // node of working graph -> set of original nodes (implicitly via map).
    let mut work_of_orig: Vec<usize> = (0..n).collect();

    loop {
        let (labels, improved) = one_level(g_n, &g_w);
        if !improved {
            break;
        }
        // Renumber labels densely.
        let mut remap: Vec<isize> = vec![-1; g_n];
        let mut next = 0usize;
        for &l in &labels {
            if remap[l] < 0 {
                remap[l] = next as isize;
                next += 1;
            }
        }
        // Update original-node communities.
        for w in work_of_orig.iter_mut() {
            *w = remap[labels[*w]] as usize;
        }
        if next == g_n {
            break; // no aggregation happened
        }
        // Aggregate the working graph.
        let mut new_w = vec![0.0; next * next];
        for i in 0..g_n {
            for j in 0..g_n {
                if i == j {
                    continue;
                }
                let (ci, cj) = (remap[labels[i]] as usize, remap[labels[j]] as usize);
                if ci != cj {
                    new_w[ci * next + cj] += g_w[i * g_n + j];
                } else {
                    // Intra-community weight becomes a self-loop that the
                    // next level's modularity must account for.
                    new_w[ci * next + cj] += g_w[i * g_n + j];
                }
            }
        }
        g_n = next;
        g_w = new_w;
        node_comm = work_of_orig.clone();
        if g_n == 1 {
            break;
        }
    }
    // Densify final labels over original nodes.
    let mut remap: Vec<isize> = vec![-1; n];
    let mut next = 0usize;
    let mut out = vec![0usize; n];
    for (i, &c) in node_comm.iter().enumerate() {
        if remap[c] < 0 {
            remap[c] = next as isize;
            next += 1;
        }
        out[i] = remap[c] as usize;
    }
    out
}

/// One local-moving pass. Returns (labels, whether anything moved).
fn one_level(n: usize, w: &[f64]) -> (Vec<usize>, bool) {
    let mut comm: Vec<usize> = (0..n).collect();
    // k_i including self-loops (self-loop counts twice in degree).
    let k: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| w[i * n + j]).sum::<f64>() + w[i * n + i])
        .collect();
    let two_m: f64 = k.iter().sum();
    if two_m <= 0.0 {
        return (comm, false);
    }
    // Σ of degrees per community.
    let mut sigma_tot: Vec<f64> = k.clone();
    let mut improved_any = false;
    for _pass in 0..32 {
        let mut moved = false;
        for i in 0..n {
            let ci = comm[i];
            // Weights from i to each community.
            let mut to_comm: std::collections::HashMap<usize, f64> =
                std::collections::HashMap::new();
            for j in 0..n {
                if j != i && w[i * n + j] > 0.0 {
                    *to_comm.entry(comm[j]).or_insert(0.0) += w[i * n + j];
                }
            }
            // Remove i from its community.
            sigma_tot[ci] -= k[i];
            let base = to_comm.get(&ci).copied().unwrap_or(0.0);
            let mut best = (ci, 0.0f64);
            for (&c, &w_ic) in &to_comm {
                let gain = (w_ic - base) - k[i] * (sigma_tot[c] - sigma_tot[ci]) / two_m;
                if gain > best.1 + 1e-12 {
                    best = (c, gain);
                }
            }
            sigma_tot[best.0] += k[i];
            if best.0 != ci {
                comm[i] = best.0;
                moved = true;
                improved_any = true;
            }
        }
        if !moved {
            break;
        }
    }
    (comm, improved_any)
}

/// Modularity of a partition on a dense weighted graph (for tests and
/// reporting): `Q = Σ_ij (w_ij − k_i·k_j / 2m) δ(c_i, c_j) / 2m`.
pub fn modularity(n: usize, w: &[f64], labels: &[usize]) -> f64 {
    let k: Vec<f64> = (0..n).map(|i| (0..n).map(|j| w[i * n + j]).sum()).collect();
    let two_m: f64 = k.iter().sum();
    if two_m <= 0.0 {
        return 0.0;
    }
    let mut q = 0.0;
    for i in 0..n {
        for j in 0..n {
            if labels[i] == labels[j] {
                q += w[i * n + j] - k[i] * k[j] / two_m;
            }
        }
    }
    q / two_m
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by one weak edge.
    fn two_cliques() -> (usize, Vec<f64>) {
        let n = 8;
        let mut w = vec![0.0; n * n];
        let set = |i: usize, j: usize, v: f64, w: &mut Vec<f64>| {
            w[i * n + j] = v;
            w[j * n + i] = v;
        };
        for a in 0..4 {
            for b in (a + 1)..4 {
                set(a, b, 1.0, &mut w);
                set(a + 4, b + 4, 1.0, &mut w);
            }
        }
        set(0, 4, 0.05, &mut w);
        (n, w)
    }

    #[test]
    fn separates_two_cliques() {
        let (n, w) = two_cliques();
        let labels = louvain(n, &w);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[7]);
        assert_ne!(labels[0], labels[4]);
        // Exactly two communities.
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn modularity_improves_over_singletons() {
        let (n, w) = two_cliques();
        let labels = louvain(n, &w);
        let singletons: Vec<usize> = (0..n).collect();
        assert!(modularity(n, &w, &labels) > modularity(n, &w, &singletons));
        assert!(modularity(n, &w, &labels) > 0.3);
    }

    #[test]
    fn empty_and_single() {
        assert!(louvain(0, &[]).is_empty());
        assert_eq!(louvain(1, &[0.0]), vec![0]);
    }

    #[test]
    fn disconnected_nodes_stay_separate() {
        let n = 3;
        let w = vec![0.0; 9];
        let labels = louvain(n, &w);
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn deterministic() {
        let (n, w) = two_cliques();
        assert_eq!(louvain(n, &w), louvain(n, &w));
    }
}
