//! # cm-inference
//!
//! Automatic TAG generation from raw VM-to-VM traffic (§3, "Producing TAG
//! Models").
//!
//! For tenants who do not know their application's structure, the paper
//! sketches a measurement pipeline and reports its quality on the bing.com
//! dataset (adjusted mutual information ≈ 0.54 against the known service
//! structure, using Louvain clustering). This crate implements the full
//! pipeline:
//!
//! 1. [`TrafficTrace`] — a time series of VM-to-VM traffic matrices;
//! 2. [`feature_similarity`] — per-VM feature vectors (the VM's row and
//!    column of the bandwidth-weighted traffic matrix) compared by angular
//!    distance;
//! 3. [`louvain`] — modularity maximization on the similarity projection
//!    graph (Blondel et al. \[35\]);
//! 4. [`adjusted_mutual_information`] — the clustering-quality metric of
//!    Vinh et al. \[37\], 0 = independent, 1 = identical;
//! 5. [`infer_tag`] — TAG construction: each cluster becomes a component,
//!    trunk/self-loop guarantees are set from the **peak of the summed**
//!    cluster-to-cluster traffic over time (capturing the statistical
//!    multiplexing that makes TAG cheaper than peak-per-pipe, §3);
//! 6. [`synthesize_trace`] — ground-truth trace generation from a known
//!    TAG, with load-balancer skew and noise, for end-to-end validation.

mod ami;
mod build;
mod features;
mod louvain;
mod synth;
mod trace;

pub use ami::adjusted_mutual_information;
pub use build::infer_tag;
pub use features::feature_similarity;
pub use louvain::{louvain, modularity};
pub use synth::{synthesize_trace, SynthConfig};
pub use trace::TrafficTrace;
