//! TAG construction from a clustering and a traffic trace (§3).

use crate::trace::TrafficTrace;
use cm_core::model::{Tag, TagBuilder, TierId};

/// Build a TAG from a clustering of the trace's VMs.
///
/// Each cluster becomes a component; for every ordered cluster pair with
/// traffic, a trunk edge is added with per-VM guarantees derived from the
/// **peak of the summed** cluster-to-cluster traffic over the trace
/// (`S_e = peak / N_u`, `R_e = peak / N_v`), and every cluster's internal
/// traffic becomes a self-loop (`SR = peak_intra / N_u`). Using the peak of
/// the sum rather than the sum of per-pair peaks is where TAG banks the
/// statistical-multiplexing savings over the pipe model (§3). Rates below
/// `min_edge_kbps` are dropped as noise.
pub fn infer_tag(
    trace: &TrafficTrace,
    labels: &[usize],
    name: &str,
    min_edge_kbps: f64,
) -> (Tag, Vec<TierId>) {
    assert_eq!(labels.len(), trace.num_vms());
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let members: Vec<Vec<usize>> = (0..k)
        .map(|c| (0..trace.num_vms()).filter(|&v| labels[v] == c).collect())
        .collect();

    let mut b = TagBuilder::new(name);
    let tier_ids: Vec<TierId> = members
        .iter()
        .enumerate()
        .map(|(c, m)| b.tier(format!("cluster{c}"), m.len() as u32))
        .collect();

    for (u, mu) in members.iter().enumerate() {
        for (v, mv) in members.iter().enumerate() {
            if mu.is_empty() || mv.is_empty() {
                continue;
            }
            let peak = trace.peak_group_traffic(mu, mv);
            if u == v {
                if peak >= min_edge_kbps && mu.len() >= 2 {
                    let sr = (peak / mu.len() as f64).round() as u64;
                    if sr > 0 {
                        b.self_loop(tier_ids[u], sr).expect("valid tier");
                    }
                }
            } else if peak >= min_edge_kbps {
                let s = (peak / mu.len() as f64).round() as u64;
                let r = (peak / mv.len() as f64).round() as u64;
                if s > 0 || r > 0 {
                    b.edge(tier_ids[u], tier_ids[v], s, r).expect("valid tiers");
                }
            }
        }
    }
    let vm_tier: Vec<TierId> = labels.iter().map(|&l| tier_ids[l]).collect();
    (b.build().expect("inferred TAG is valid"), vm_tier)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tier_reconstruction() {
        // VMs 0,1 = tier A; 2,3 = tier B; A sends 100 total to B, B has
        // 40 of internal traffic.
        let n = 4;
        let mut m = vec![0.0; n * n];
        m[2] = 30.0; // 0->2
        m[3] = 20.0; // 0->3
        m[n + 2] = 25.0; // 1->2
        m[n + 3] = 25.0; // 1->3
        m[2 * n + 3] = 20.0; // 2->3
        m[3 * n + 2] = 20.0; // 3->2
        let trace = TrafficTrace::new(n, vec![m]);
        let (tag, vm_tier) = infer_tag(&trace, &[0, 0, 1, 1], "t", 1.0);
        assert_eq!(tag.num_tiers(), 2);
        assert_eq!(vm_tier[0], vm_tier[1]);
        assert_ne!(vm_tier[0], vm_tier[2]);
        // Trunk A->B: peak 100 over 2 senders/2 receivers → <50, 50>.
        let e = tag
            .edges()
            .iter()
            .find(|e| !e.is_self_loop() && e.from == vm_tier[0])
            .unwrap();
        assert_eq!(e.snd_kbps, 50);
        assert_eq!(e.rcv_kbps, 50);
        // Self-loop on B: peak 40 over 2 VMs → 20.
        assert_eq!(tag.self_loop_of(vm_tier[2]), Some(20));
    }

    #[test]
    fn statistical_multiplexing_uses_peak_of_sum() {
        // Alternating load: 0→2 then 0→3, each 60. Sum-of-peaks would be
        // 120; peak-of-sum is 60.
        let n = 3;
        let mut s1 = vec![0.0; 9];
        s1[2] = 60.0;
        // Snapshot 2 sends only 0->1 (cluster {0} -> {1,2}).
        let mut s2 = vec![0.0; 9];
        s2[1] = 60.0;
        let trace = TrafficTrace::new(n, vec![s1, s2]);
        let (tag, vm_tier) = infer_tag(&trace, &[0, 1, 1], "t", 1.0);
        let e = tag
            .edges()
            .iter()
            .find(|e| e.from == vm_tier[0] && !e.is_self_loop())
            .unwrap();
        // S = 60/1 (not 120).
        assert_eq!(e.snd_kbps, 60);
        assert_eq!(e.rcv_kbps, 30);
    }

    #[test]
    fn noise_below_threshold_is_dropped() {
        let n = 2;
        let mut m = vec![0.0; 4];
        m[1] = 0.5; // sub-threshold chatter
        let trace = TrafficTrace::new(n, vec![m]);
        let (tag, _) = infer_tag(&trace, &[0, 1], "t", 1.0);
        assert!(tag.edges().is_empty());
    }
}
