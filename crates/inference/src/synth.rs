//! Ground-truth trace synthesis for validating the inference pipeline.

use crate::trace::TrafficTrace;
use cm_core::model::Tag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for trace synthesis.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of measurement snapshots.
    pub snapshots: usize,
    /// Load-balancer skew: per-snapshot pair weights are `exp(skew · z)`
    /// with standard-normal `z` (0 = perfectly uniform).
    pub skew: f64,
    /// Background noise rate added to random unrelated pairs, as a
    /// fraction of the mean structured rate.
    pub noise: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 1,
            snapshots: 24,
            skew: 0.8,
            noise: 0.05,
        }
    }
}

/// Synthesize a VM-to-VM traffic trace from a ground-truth TAG: every trunk
/// edge's total `B_{u→v}` is spread over the `N_u × N_v` pairs with
/// time-varying lognormal weights (imperfect load balancing, §2.2), every
/// self-loop likewise over intra-tier pairs, plus low-rate background
/// noise. Returns the trace and the ground-truth tier label per VM.
pub fn synthesize_trace(tag: &Tag, cfg: &SynthConfig) -> (TrafficTrace, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // VM index ranges per internal tier.
    let mut labels = Vec::new();
    let mut offsets = vec![usize::MAX; tag.num_tiers()];
    for t in tag.internal_tiers() {
        offsets[t.index()] = labels.len();
        for _ in 0..tag.tier(t).size {
            labels.push(t.index());
        }
    }
    let n = labels.len();
    // Densify ground-truth labels.
    let gt = densify(&labels);

    let mean_rate = {
        let total: f64 = tag.total_bandwidth_kbps() as f64;
        (total / n.max(1) as f64).max(1.0)
    };

    let mut snapshots = Vec::with_capacity(cfg.snapshots);
    for _ in 0..cfg.snapshots {
        let mut m = vec![0.0f64; n * n];
        for e in tag.edges() {
            let fi = e.from.index();
            let ti = e.to.index();
            if offsets[fi] == usize::MAX || offsets[ti] == usize::MAX {
                continue;
            }
            let nu = tag.tier(e.from).size as usize;
            let nv = tag.tier(e.to).size as usize;
            let total = if e.is_self_loop() {
                nu as f64 * e.snd_kbps as f64
            } else {
                tag.trunk_total(e) as f64
            };
            // Lognormal pair weights, renormalized per snapshot.
            let mut weights = Vec::new();
            let mut pairs = Vec::new();
            for i in 0..nu {
                for j in 0..nv {
                    if e.is_self_loop() && i == j {
                        continue;
                    }
                    let z = normal(&mut rng);
                    weights.push((cfg.skew * z).exp());
                    pairs.push((offsets[fi] + i, offsets[ti] + j));
                }
            }
            let wsum: f64 = weights.iter().sum();
            for ((src, dst), w) in pairs.into_iter().zip(weights) {
                m[src * n + dst] += total * w / wsum;
            }
        }
        // Background noise on random pairs.
        if cfg.noise > 0.0 && n >= 2 {
            for _ in 0..n {
                let i = rng.random_range(0..n);
                let mut j = rng.random_range(0..n);
                if i == j {
                    j = (j + 1) % n;
                }
                m[i * n + j] += cfg.noise * mean_rate * rng.random_range(0.0..1.0);
            }
        }
        snapshots.push(m);
    }
    (TrafficTrace::new(n, snapshots), gt)
}

fn densify(labels: &[usize]) -> Vec<usize> {
    let mut map = std::collections::HashMap::new();
    let mut next = 0usize;
    labels
        .iter()
        .map(|&l| {
            *map.entry(l).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        })
        .collect()
}

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{adjusted_mutual_information, feature_similarity, infer_tag, louvain};
    use cm_core::model::TagBuilder;

    fn three_tier_tag() -> Tag {
        let mut b = TagBuilder::new("web3");
        let web = b.tier("web", 6);
        let logic = b.tier("logic", 6);
        let db = b.tier("db", 4);
        b.sym_edge(web, logic, 500).unwrap();
        b.sym_edge(logic, db, 100).unwrap();
        b.self_loop(db, 50).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn trace_preserves_edge_totals_on_average() {
        let tag = three_tier_tag();
        let (trace, gt) = synthesize_trace(&tag, &SynthConfig::default());
        assert_eq!(trace.num_vms(), 16);
        assert_eq!(gt.len(), 16);
        // Web→logic mean aggregate ≈ trunk total (3000 kbps).
        let web: Vec<usize> = (0..6).collect();
        let logic: Vec<usize> = (6..12).collect();
        let mean: f64 = (0..trace.num_snapshots())
            .map(|k| {
                web.iter()
                    .flat_map(|&i| logic.iter().map(move |&j| (i, j)))
                    .map(|(i, j)| trace.at(k, i, j))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / trace.num_snapshots() as f64;
        assert!(
            (mean - 3000.0).abs() / 3000.0 < 0.05,
            "mean web→logic {mean}"
        );
    }

    #[test]
    fn end_to_end_inference_recovers_structure() {
        // The full §3 pipeline on a clean-ish trace: AMI must show strong
        // agreement (the paper reports 0.54 on the noisy real dataset).
        let tag = three_tier_tag();
        let (trace, gt) = synthesize_trace(&tag, &SynthConfig::default());
        let sim = feature_similarity(&trace);
        let labels = louvain(trace.num_vms(), &sim);
        let ami = adjusted_mutual_information(&labels, &gt);
        assert!(ami > 0.5, "pipeline AMI too low: {ami}");
    }

    #[test]
    fn inferred_tag_guarantees_cover_actual_traffic() {
        let tag = three_tier_tag();
        let (trace, gt) = synthesize_trace(&tag, &SynthConfig::default());
        let (inferred, _) = infer_tag(&trace, &gt, "inferred", 1.0);
        // With ground-truth labels, the inferred trunk between web and
        // logic carries at least the mean rate (peak ≥ mean).
        let total: u64 = inferred.total_bandwidth_kbps();
        assert!(total as f64 >= 3000.0 + 600.0, "total {total}");
    }

    #[test]
    fn deterministic_synthesis() {
        let tag = three_tier_tag();
        let (a, _) = synthesize_trace(&tag, &SynthConfig::default());
        let (b, _) = synthesize_trace(&tag, &SynthConfig::default());
        assert_eq!(a, b);
    }
}
