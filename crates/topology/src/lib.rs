//! # cm-topology
//!
//! Tree-shaped datacenter topology substrate for CloudMirror (SIGCOMM 2014).
//!
//! The paper deploys tenants onto "tree-shaped physical topologies" (§4): a
//! single-rooted tree whose leaves are servers with VM slots and whose every
//! non-root node has one *uplink* to its parent with independent capacity in
//! each direction. This crate provides exactly that substrate:
//!
//! * [`TreeSpec`] — declarative description of a tree (fanouts, per-level
//!   uplink capacities, slots per server), including the paper's evaluation
//!   datacenter (2048 servers, 25 slots each, 10 G server uplinks,
//!   32:8:1 oversubscription — §5 "Simulation Setup").
//! * [`Topology`] — the instantiated tree with slot accounting on servers and
//!   directional bandwidth accounting on every uplink.
//!
//! Bandwidth is carried as integer **kbps** ([`Kbps`]) so that admission
//! decisions are exact: there is no floating-point drift in capacity checks
//! no matter how many tenants are reserved and released.
//!
//! Levels are numbered bottom-up: level 0 is the server level (the paper's
//! `FindLowestSubtree(g, 0)` starts there), and `num_levels() - 1` is the
//! root. A "subtree at level L" is identified by its top [`NodeId`].
//!
//! The crate is deliberately free of placement policy: reservation semantics
//! (which bandwidth a tenant needs on a cut) live in `cm-core`; this crate
//! only enforces physical capacity.

mod spec;
mod tree;
mod units;

pub use spec::TreeSpec;
pub use tree::{NodeId, Topology, TopologyError};
pub use units::{gbps, kbps_to_gbps, kbps_to_mbps, mbps, Kbps, UNLIMITED_KBPS};
