//! # cm-topology
//!
//! Tree-shaped datacenter topology substrate for CloudMirror (SIGCOMM 2014).
//!
//! The paper deploys tenants onto "tree-shaped physical topologies" (§4): a
//! single-rooted tree whose leaves are servers with VM slots and whose every
//! non-root node has one *uplink* to its parent with independent capacity in
//! each direction. This crate provides exactly that substrate:
//!
//! * [`TreeSpec`] — declarative description of a tree (fanouts, per-level
//!   uplink capacities, slots per server), including the paper's evaluation
//!   datacenter (2048 servers, 25 slots each, 10 G server uplinks,
//!   32:8:1 oversubscription — §5 "Simulation Setup").
//! * [`Topology`] — the instantiated tree with slot accounting on servers and
//!   directional bandwidth accounting on every uplink.
//!
//! Bandwidth is carried as integer **kbps** ([`Kbps`]) so that admission
//! decisions are exact: there is no floating-point drift in capacity checks
//! no matter how many tenants are reserved and released.
//!
//! Levels are numbered bottom-up: level 0 is the server level (the paper's
//! `FindLowestSubtree(g, 0)` starts there), and `num_levels() - 1` is the
//! root. A "subtree at level L" is identified by its top [`NodeId`].
//!
//! The crate is deliberately free of placement policy: reservation semantics
//! (which bandwidth a tenant needs on a cut) live in `cm-core`; this crate
//! only enforces physical capacity.
//!
//! ## Incremental aggregates and the descend search
//!
//! Beyond raw accounting, every mutation maintains a set of aggregates so
//! the placement hot path never scans a level:
//!
//! * **`sub_slots_free`** — free slots per subtree (the original scheme);
//! * **max-free-per-target-level** — for each node and each level `L`
//!   below it, the largest `sub_slots_free` of any descendant subtree
//!   rooted at `L`. Slot mutations update it along the parent path from
//!   the *delta* of the on-path child's row (an entry that rose becomes
//!   the new max outright; one that fell rescans the children only when
//!   that child held the max), so the common case is O(depth).
//! * **cached uplink availability** — `capacity − used` per direction,
//!   updated by [`Topology::adjust_uplink`];
//! * **per-level totals** — reserved bandwidth, capacity, and the §4.5
//!   availability half-sum per level, making
//!   [`Topology::reserved_at_level`] / [`Topology::capacity_at_level`] /
//!   [`Topology::avail_half_sum_at_level`] O(1).
//!
//! [`Topology::descend_to_level`] implements `FindLowestSubtree` on top:
//! it walks root→target-level choosing children by their max-free bound
//! while threading the running path-minimum of available bandwidth, with
//! exact lexicographic (free desc, id asc) dominance pruning — the same
//! subtree the full linear scan would pick, in O(branching × depth) for
//! the common case. Because the aggregates are maintained *inside*
//! `alloc_slots`/`release_slots`/`adjust_uplink`, transactional rollback
//! in `cm-core` (which replays exact inverse operations) keeps them
//! correct by construction; [`Topology::check_invariants`] recomputes
//! every aggregate brute-force for the property tests.

mod shard;
mod spec;
mod tree;
mod units;

pub use shard::{PodPartition, ShardId, ShardSet};
pub use spec::TreeSpec;
pub use tree::{NodeId, Topology, TopologyError};
pub use units::{gbps, kbps_to_gbps, kbps_to_mbps, mbps, Kbps, UNLIMITED_KBPS};
