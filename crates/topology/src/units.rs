//! Bandwidth units.
//!
//! All capacities and reservations in the workspace are integer kbps. The
//! paper quotes guarantees in Mbps and link capacities in Gbps; the helpers
//! here convert at the boundaries. Integer arithmetic keeps the admission
//! control exact (a float-based ledger accumulates drift over the 10,000
//! tenant arrivals/departures of a simulation run and can flip accept/reject
//! decisions near the capacity boundary).

/// Bandwidth in kilobits per second.
///
/// `u64` kbps covers up to ~2.3 Tbps×8e6 aggregate without overflow concern;
/// the paper's largest link is 80 Gbps = 8×10⁷ kbps.
pub type Kbps = u64;

/// A practically-infinite capacity used for the paper's "ideal network
/// topology with unlimited network capacity" (Table 1 experiment).
///
/// Chosen far below `u64::MAX` so that summing many reservations against it
/// can never overflow intermediate arithmetic.
pub const UNLIMITED_KBPS: Kbps = 1 << 50;

/// Convert Mbps (fractional allowed) to integer kbps, rounding to nearest.
#[inline]
pub fn mbps(v: f64) -> Kbps {
    debug_assert!(v >= 0.0, "bandwidth must be non-negative");
    (v * 1_000.0).round() as Kbps
}

/// Convert Gbps (fractional allowed) to integer kbps, rounding to nearest.
#[inline]
pub fn gbps(v: f64) -> Kbps {
    debug_assert!(v >= 0.0, "bandwidth must be non-negative");
    (v * 1_000_000.0).round() as Kbps
}

/// Convert kbps to Mbps for reporting.
#[inline]
pub fn kbps_to_mbps(v: Kbps) -> f64 {
    v as f64 / 1_000.0
}

/// Convert kbps to Gbps for reporting.
#[inline]
pub fn kbps_to_gbps(v: Kbps) -> f64 {
    v as f64 / 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_round_trips() {
        assert_eq!(mbps(1.0), 1_000);
        assert_eq!(mbps(0.5), 500);
        assert_eq!(mbps(450.0), 450_000);
        assert_eq!(kbps_to_mbps(mbps(123.0)), 123.0);
    }

    #[test]
    fn gbps_round_trips() {
        assert_eq!(gbps(10.0), 10_000_000);
        assert_eq!(gbps(80.0), 80_000_000);
        assert_eq!(kbps_to_gbps(gbps(2.5)), 2.5);
    }

    #[test]
    fn unlimited_is_huge_but_sums_safely() {
        // 1M reservations of 80G each against UNLIMITED must not overflow.
        let total: u128 = (0..1_000_000u128).map(|_| gbps(80.0) as u128).sum();
        assert!(total < UNLIMITED_KBPS as u128 * 1000);
        assert!(UNLIMITED_KBPS > gbps(1_000_000.0));
    }

    #[test]
    fn rounding_is_nearest() {
        assert_eq!(mbps(0.0004), 0);
        assert_eq!(mbps(0.0006), 1);
    }
}
