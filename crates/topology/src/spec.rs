//! Declarative topology descriptions.

use crate::units::{gbps, Kbps, UNLIMITED_KBPS};

/// Declarative description of a single-rooted tree datacenter.
///
/// The tree has `fanout_top_down.len() + 1` levels. Level 0 (bottom) holds
/// the servers; the root sits at the top. `fanout_top_down[0]` is the number
/// of children of the root, `fanout_top_down.last()` is the number of servers
/// per bottom switch.
///
/// `uplink_kbps[l]` is the capacity, in each direction independently, of the
/// uplink of every node at level `l` (so `uplink_kbps[0]` is the server NIC
/// uplink). The root has no uplink, hence `uplink_kbps.len() ==
/// fanout_top_down.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSpec {
    /// Children per node at each level, from the root downwards.
    pub fanout_top_down: Vec<u32>,
    /// Uplink capacity per level, bottom-up (index 0 = server uplink).
    pub uplink_kbps: Vec<Kbps>,
    /// VM slots per server.
    pub slots_per_server: u32,
}

impl TreeSpec {
    /// The paper's evaluation datacenter (§5 "Simulation Setup"):
    ///
    /// * 3-level tree "inspired by a real cloud datacenter" with 2048 servers
    ///   (8 aggregation pods × 8 racks × 32 servers),
    /// * 25 VM slots per server (51,200 slots total),
    /// * 10 Gbps server uplinks,
    /// * ToR and aggregation uplinks oversubscribed "by a 32:8:1 ratio,
    ///   mimicking real datacenters": 80 Gbps ToR uplinks (4:1 at the ToR)
    ///   and 80 Gbps aggregation uplinks (8:1 at the aggregation), for a
    ///   32:1 end-to-end oversubscription.
    pub fn paper_datacenter() -> Self {
        TreeSpec {
            fanout_top_down: vec![8, 8, 32],
            uplink_kbps: vec![gbps(10.0), gbps(80.0), gbps(80.0)],
            slots_per_server: 25,
        }
    }

    /// The paper datacenter reshaped to a given *total* oversubscription
    /// ratio (Fig. 9 sweeps 16× to 128×).
    ///
    /// The 1:2 split between the two stages of the default topology is
    /// preserved: the ToR stage is oversubscribed `sqrt(total/2)`:1 and the
    /// aggregation stage `2·sqrt(total/2)`:1, so their product is `total`.
    /// `total = 32` reproduces [`TreeSpec::paper_datacenter`] exactly.
    pub fn paper_datacenter_with_oversubscription(total: f64) -> Self {
        assert!(total >= 1.0, "oversubscription ratio must be >= 1");
        let o_tor = (total / 2.0).sqrt();
        let o_agg = 2.0 * o_tor;
        let server_up = gbps(10.0);
        let tor_down = 32.0 * server_up as f64;
        let tor_up = (tor_down / o_tor).round() as Kbps;
        let agg_down = 8.0 * tor_up as f64;
        let agg_up = (agg_down / o_agg).round() as Kbps;
        TreeSpec {
            fanout_top_down: vec![8, 8, 32],
            uplink_kbps: vec![server_up, tor_up, agg_up],
            slots_per_server: 25,
        }
    }

    /// A small three-level tree for tests and examples.
    ///
    /// `pods × racks × servers` with the given slots per server and uplink
    /// capacities (bottom-up: server, ToR, aggregation).
    pub fn small(
        pods: u32,
        racks: u32,
        servers: u32,
        slots_per_server: u32,
        uplink_kbps: [Kbps; 3],
    ) -> Self {
        TreeSpec {
            fanout_top_down: vec![pods, racks, servers],
            uplink_kbps: uplink_kbps.to_vec(),
            slots_per_server,
        }
    }

    /// The single-rack example of the paper's Fig. 6: one ToR, 4 servers,
    /// 2 slots each, 10 Mbps server NICs (ToR uplink unconstrained).
    pub fn fig6_rack() -> Self {
        TreeSpec {
            fanout_top_down: vec![4],
            uplink_kbps: vec![crate::units::mbps(10.0)],
            slots_per_server: 2,
        }
    }

    /// Replace every uplink capacity with a practically-infinite one
    /// (Table 1 runs on "an ideal network topology with unlimited network
    /// capacity" so that all algorithms deploy the identical tenant set).
    pub fn unlimited_bandwidth(mut self) -> Self {
        for c in &mut self.uplink_kbps {
            *c = UNLIMITED_KBPS;
        }
        self
    }

    /// Uniformly scale every uplink capacity by `factor`.
    pub fn scale_bandwidth(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        for c in &mut self.uplink_kbps {
            *c = (*c as f64 * factor).round() as Kbps;
        }
        self
    }

    /// Number of levels in the tree (servers at level 0, root on top).
    pub fn num_levels(&self) -> usize {
        self.fanout_top_down.len() + 1
    }

    /// Total number of servers described by the spec.
    pub fn num_servers(&self) -> u64 {
        self.fanout_top_down.iter().map(|&f| f as u64).product()
    }

    /// Total number of VM slots described by the spec.
    pub fn total_slots(&self) -> u64 {
        self.num_servers() * self.slots_per_server as u64
    }

    /// Validate internal consistency (fanouts ≥ 1, matching lengths).
    pub fn validate(&self) -> Result<(), String> {
        if self.fanout_top_down.is_empty() {
            return Err("tree must have at least one switch level".into());
        }
        if self.fanout_top_down.contains(&0) {
            return Err("all fanouts must be >= 1".into());
        }
        if self.uplink_kbps.len() != self.fanout_top_down.len() {
            return Err(format!(
                "uplink_kbps must have one entry per non-root level: \
                 got {}, expected {}",
                self.uplink_kbps.len(),
                self.fanout_top_down.len()
            ));
        }
        if self.slots_per_server == 0 {
            return Err("servers must have at least one slot".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_datacenter_matches_section_5() {
        let s = TreeSpec::paper_datacenter();
        assert_eq!(s.num_servers(), 2048);
        assert_eq!(s.total_slots(), 2048 * 25);
        assert_eq!(s.num_levels(), 4); // server, ToR, agg, root
        assert_eq!(s.uplink_kbps[0], gbps(10.0));
        s.validate().unwrap();
    }

    #[test]
    fn oversubscription_32_reproduces_default() {
        let s = TreeSpec::paper_datacenter_with_oversubscription(32.0);
        assert_eq!(s, TreeSpec::paper_datacenter());
    }

    #[test]
    fn oversubscription_total_is_respected() {
        for total in [16.0, 32.0, 64.0, 128.0] {
            let s = TreeSpec::paper_datacenter_with_oversubscription(total);
            // End-to-end oversubscription: aggregate server bw / (pods * agg uplink).
            let server_bw = 2048.0 * gbps(10.0) as f64;
            let core_bw = 8.0 * s.uplink_kbps[2] as f64;
            let achieved = server_bw / core_bw;
            assert!(
                (achieved - total).abs() / total < 0.01,
                "total {total}: achieved {achieved}"
            );
        }
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut s = TreeSpec::paper_datacenter();
        s.fanout_top_down[1] = 0;
        assert!(s.validate().is_err());

        let mut s = TreeSpec::paper_datacenter();
        s.uplink_kbps.pop();
        assert!(s.validate().is_err());

        let mut s = TreeSpec::paper_datacenter();
        s.slots_per_server = 0;
        assert!(s.validate().is_err());

        let s = TreeSpec {
            fanout_top_down: vec![],
            uplink_kbps: vec![],
            slots_per_server: 1,
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn unlimited_bandwidth_lifts_all_caps() {
        let s = TreeSpec::paper_datacenter().unlimited_bandwidth();
        assert!(s.uplink_kbps.iter().all(|&c| c == UNLIMITED_KBPS));
    }

    #[test]
    fn scale_bandwidth_scales_uniformly() {
        let s = TreeSpec::paper_datacenter().scale_bandwidth(0.5);
        assert_eq!(s.uplink_kbps[0], gbps(5.0));
        assert_eq!(s.uplink_kbps[1], gbps(40.0));
    }
}
