//! The instantiated datacenter tree with resource accounting.

use crate::spec::TreeSpec;
use crate::units::Kbps;
use std::fmt;

/// Index of a node (server or switch) in a [`Topology`].
///
/// `NodeId`s are dense indices assigned in depth-first order at build time;
/// they are only meaningful for the topology that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors returned by resource mutations on a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// A slot allocation asked for more free slots than the server has.
    InsufficientSlots {
        /// The server whose slots were requested.
        server: NodeId,
        /// Slots requested.
        requested: u32,
        /// Slots actually free.
        free: u32,
    },
    /// A bandwidth reservation exceeded the uplink capacity in one direction.
    InsufficientBandwidth {
        /// The node whose uplink was targeted.
        node: NodeId,
    },
    /// A release underflowed (released more than was reserved/allocated) —
    /// this always indicates a caller bug, but is surfaced as an error so the
    /// ledger can never silently corrupt.
    ReleaseUnderflow {
        /// The node whose resources were targeted.
        node: NodeId,
    },
    /// The node kind was wrong for the operation (e.g. slot ops on a switch).
    NotAServer {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InsufficientSlots {
                server,
                requested,
                free,
            } => write!(
                f,
                "server {server}: requested {requested} slots but only {free} free"
            ),
            TopologyError::InsufficientBandwidth { node } => {
                write!(f, "uplink of {node}: insufficient bandwidth")
            }
            TopologyError::ReleaseUnderflow { node } => {
                write!(f, "{node}: released more resources than were held")
            }
            TopologyError::NotAServer { node } => {
                write!(f, "{node} is not a server")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Directional state of one uplink.
#[derive(Debug, Clone, Copy)]
struct Uplink {
    cap_up: Kbps,
    cap_dn: Kbps,
    used_up: Kbps,
    used_dn: Kbps,
}

#[derive(Debug, Clone)]
struct Node {
    level: u8,
    parent: Option<NodeId>,
    /// Children are contiguous: `children_start..children_start+children_len`.
    children_start: u32,
    children_len: u32,
    /// Range into the DFS-ordered server list covered by this subtree.
    servers_start: u32,
    servers_len: u32,
    /// Per-server slot accounting (zero for switches).
    slots_total: u32,
    slots_used: u32,
    /// Aggregate free slots in the whole subtree (equals the server's own
    /// free slots for servers).
    sub_slots_free: u64,
    sub_slots_total: u64,
    /// Uplink to the parent; `None` for the root.
    up: Option<Uplink>,
}

/// A single-rooted datacenter tree with slot and bandwidth accounting.
///
/// The topology owns *physical* state only: how many VM slots each server has
/// free and how much bandwidth is reserved on each uplink in each direction.
/// What a reservation *means* (which tenant, which model) is tracked by the
/// placement layer in `cm-core`; the topology guarantees that capacities are
/// never exceeded and that releases never underflow.
///
/// All mutating operations are atomic: they either fully apply or leave the
/// topology untouched and return an error.
#[derive(Debug, Clone)]
pub struct Topology {
    spec: TreeSpec,
    nodes: Vec<Node>,
    /// Node ids grouped by level; `levels[0]` are the servers.
    levels: Vec<Vec<NodeId>>,
    /// All servers in depth-first order (so every subtree's servers form a
    /// contiguous slice of this vector).
    servers: Vec<NodeId>,
    root: NodeId,
}

impl Topology {
    /// Instantiate a topology from a validated [`TreeSpec`].
    ///
    /// # Panics
    /// Panics if the spec fails [`TreeSpec::validate`].
    pub fn build(spec: &TreeSpec) -> Topology {
        spec.validate().expect("invalid TreeSpec");
        let num_levels = spec.num_levels();
        let mut topo = Topology {
            spec: spec.clone(),
            nodes: Vec::new(),
            levels: vec![Vec::new(); num_levels],
            servers: Vec::new(),
            root: NodeId(0),
        };
        let root_level = (num_levels - 1) as u8;
        let root = topo.push_node(root_level, None);
        topo.root = root;
        topo.build_children(root);
        // Finalize subtree aggregates bottom-up (nodes were pushed parent
        // before children, so a reverse scan visits children first).
        for i in (0..topo.nodes.len()).rev() {
            let n = &topo.nodes[i];
            if n.level == 0 {
                let free = (n.slots_total - n.slots_used) as u64;
                let total = n.slots_total as u64;
                let node = &mut topo.nodes[i];
                node.sub_slots_free = free;
                node.sub_slots_total = total;
                node.servers_start = 0; // fixed below
                node.servers_len = 1;
            } else {
                let (cs, cl) = (n.children_start as usize, n.children_len as usize);
                let mut free = 0u64;
                let mut total = 0u64;
                for c in cs..cs + cl {
                    free += topo.nodes[c].sub_slots_free;
                    total += topo.nodes[c].sub_slots_total;
                }
                let node = &mut topo.nodes[i];
                node.sub_slots_free = free;
                node.sub_slots_total = total;
            }
        }
        // Assign server ranges with a DFS so that subtree servers are
        // contiguous in `servers`.
        topo.assign_server_ranges();
        topo
    }

    fn push_node(&mut self, level: u8, parent: Option<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let slots = if level == 0 {
            self.spec.slots_per_server
        } else {
            0
        };
        let up = parent.map(|_| {
            let cap = self.spec.uplink_kbps[level as usize];
            Uplink {
                cap_up: cap,
                cap_dn: cap,
                used_up: 0,
                used_dn: 0,
            }
        });
        self.nodes.push(Node {
            level,
            parent,
            children_start: 0,
            children_len: 0,
            servers_start: 0,
            servers_len: 0,
            slots_total: slots,
            slots_used: 0,
            sub_slots_free: 0,
            sub_slots_total: 0,
            up,
        });
        self.levels[level as usize].push(id);
        id
    }

    fn build_children(&mut self, parent: NodeId) {
        let level = self.nodes[parent.index()].level;
        if level == 0 {
            return;
        }
        let child_level = level - 1;
        // fanout_top_down[0] is the root's fanout; the root is at the highest
        // level, so index by distance from the top.
        let depth_from_top = (self.spec.num_levels() - 1) as u8 - level;
        let fanout = self.spec.fanout_top_down[depth_from_top as usize];
        let start = self.nodes.len() as u32;
        for _ in 0..fanout {
            self.push_node(child_level, Some(parent));
        }
        self.nodes[parent.index()].children_start = start;
        self.nodes[parent.index()].children_len = fanout;
        for i in 0..fanout {
            self.build_children(NodeId(start + i));
        }
    }

    fn assign_server_ranges(&mut self) {
        // Iterative DFS assigning contiguous server ranges.
        fn dfs(topo: &mut Topology, node: NodeId) -> (u32, u32) {
            if topo.nodes[node.index()].level == 0 {
                let start = topo.servers.len() as u32;
                topo.servers.push(node);
                let n = &mut topo.nodes[node.index()];
                n.servers_start = start;
                n.servers_len = 1;
                return (start, 1);
            }
            let (cs, cl) = {
                let n = &topo.nodes[node.index()];
                (n.children_start, n.children_len)
            };
            let mut start = u32::MAX;
            let mut len = 0;
            for c in cs..cs + cl {
                let (s, l) = dfs(topo, NodeId(c));
                if start == u32::MAX {
                    start = s;
                }
                len += l;
            }
            let n = &mut topo.nodes[node.index()];
            n.servers_start = start;
            n.servers_len = len;
            (start, len)
        }
        dfs(self, self.root);
    }

    // ------------------------------------------------------------------
    // Structure queries
    // ------------------------------------------------------------------

    /// The spec this topology was built from.
    pub fn spec(&self) -> &TreeSpec {
        &self.spec
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of levels (servers are level 0, root is `num_levels()-1`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The level of a node (0 = server).
    pub fn level(&self, n: NodeId) -> u8 {
        self.nodes[n.index()].level
    }

    /// Whether the node is a server (a leaf holding VM slots).
    pub fn is_server(&self, n: NodeId) -> bool {
        self.nodes[n.index()].level == 0
    }

    /// All node ids at a given level.
    pub fn nodes_at_level(&self, level: usize) -> &[NodeId] {
        &self.levels[level]
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// Children of a node, as a contiguous id range (empty for servers).
    pub fn children(&self, n: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        let node = &self.nodes[n.index()];
        (node.children_start..node.children_start + node.children_len).map(NodeId)
    }

    /// All servers, in DFS order.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// The servers under a subtree, as a contiguous slice (DFS order).
    pub fn servers_under(&self, n: NodeId) -> &[NodeId] {
        let node = &self.nodes[n.index()];
        let s = node.servers_start as usize;
        &self.servers[s..s + node.servers_len as usize]
    }

    /// Iterator over `n`'s ancestors starting at `n` itself and ending at the
    /// root (inclusive).
    pub fn path_to_root(&self, n: NodeId) -> PathToRoot<'_> {
        PathToRoot {
            topo: self,
            next: Some(n),
        }
    }

    /// Whether `ancestor` is on `path_to_root(n)` (a node is its own
    /// ancestor for this purpose).
    pub fn is_ancestor(&self, ancestor: NodeId, n: NodeId) -> bool {
        self.path_to_root(n).any(|a| a == ancestor)
    }

    // ------------------------------------------------------------------
    // Slot accounting
    // ------------------------------------------------------------------

    /// Total slots of a server.
    pub fn slots_total(&self, server: NodeId) -> u32 {
        self.nodes[server.index()].slots_total
    }

    /// Free slots on a server.
    pub fn slots_free(&self, server: NodeId) -> u32 {
        let n = &self.nodes[server.index()];
        n.slots_total - n.slots_used
    }

    /// Aggregate free slots in the subtree rooted at `n`.
    pub fn subtree_slots_free(&self, n: NodeId) -> u64 {
        self.nodes[n.index()].sub_slots_free
    }

    /// Aggregate total slots in the subtree rooted at `n`.
    pub fn subtree_slots_total(&self, n: NodeId) -> u64 {
        self.nodes[n.index()].sub_slots_total
    }

    /// Allocate `count` VM slots on a server.
    pub fn alloc_slots(&mut self, server: NodeId, count: u32) -> Result<(), TopologyError> {
        let node = &self.nodes[server.index()];
        if node.level != 0 {
            return Err(TopologyError::NotAServer { node: server });
        }
        let free = node.slots_total - node.slots_used;
        if count > free {
            return Err(TopologyError::InsufficientSlots {
                server,
                requested: count,
                free,
            });
        }
        self.nodes[server.index()].slots_used += count;
        let mut cur = Some(server);
        while let Some(c) = cur {
            self.nodes[c.index()].sub_slots_free -= count as u64;
            cur = self.nodes[c.index()].parent;
        }
        Ok(())
    }

    /// Release `count` previously-allocated VM slots on a server.
    pub fn release_slots(&mut self, server: NodeId, count: u32) -> Result<(), TopologyError> {
        let node = &self.nodes[server.index()];
        if node.level != 0 {
            return Err(TopologyError::NotAServer { node: server });
        }
        if count > node.slots_used {
            return Err(TopologyError::ReleaseUnderflow { node: server });
        }
        self.nodes[server.index()].slots_used -= count;
        let mut cur = Some(server);
        while let Some(c) = cur {
            self.nodes[c.index()].sub_slots_free += count as u64;
            cur = self.nodes[c.index()].parent;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bandwidth accounting
    // ------------------------------------------------------------------

    /// Uplink capacity of `n` in (up, down) direction; `None` for the root.
    pub fn uplink_capacity(&self, n: NodeId) -> Option<(Kbps, Kbps)> {
        self.nodes[n.index()].up.map(|u| (u.cap_up, u.cap_dn))
    }

    /// Reserved bandwidth on `n`'s uplink in (up, down) direction.
    pub fn uplink_used(&self, n: NodeId) -> Option<(Kbps, Kbps)> {
        self.nodes[n.index()].up.map(|u| (u.used_up, u.used_dn))
    }

    /// Available (unreserved) bandwidth on `n`'s uplink in (up, down)
    /// direction; `None` for the root.
    pub fn uplink_avail(&self, n: NodeId) -> Option<(Kbps, Kbps)> {
        self.nodes[n.index()]
            .up
            .map(|u| (u.cap_up - u.used_up, u.cap_dn - u.used_dn))
    }

    /// Minimum available bandwidth along every uplink from `n` (inclusive)
    /// to the root, per direction. Returns `(Kbps::MAX, Kbps::MAX)` when `n`
    /// is the root (no links to cross).
    pub fn avail_to_root(&self, n: NodeId) -> (Kbps, Kbps) {
        let mut min_up = Kbps::MAX;
        let mut min_dn = Kbps::MAX;
        for a in self.path_to_root(n) {
            if let Some((au, ad)) = self.uplink_avail(a) {
                min_up = min_up.min(au);
                min_dn = min_dn.min(ad);
            }
        }
        (min_up, min_dn)
    }

    /// Atomically apply signed deltas to the reservation on `n`'s uplink.
    ///
    /// Fails (leaving state untouched) when a positive delta exceeds the
    /// remaining capacity in either direction, when a negative delta
    /// underflows the reservation, or when `n` is the root.
    pub fn adjust_uplink(
        &mut self,
        n: NodeId,
        delta_up: i64,
        delta_dn: i64,
    ) -> Result<(), TopologyError> {
        let node = &mut self.nodes[n.index()];
        let up = node
            .up
            .as_mut()
            .ok_or(TopologyError::InsufficientBandwidth { node: n })?;
        let new_up = apply_delta(up.used_up, delta_up, up.cap_up, n)?;
        let new_dn = apply_delta(up.used_dn, delta_dn, up.cap_dn, n)?;
        up.used_up = new_up;
        up.used_dn = new_dn;
        Ok(())
    }

    /// Sum of reserved uplink bandwidth over all nodes of a level, per
    /// direction. This is the paper's Table 1 metric ("aggregate bandwidth
    /// reserved on uplinks from the server, ToR, and agg switch levels").
    pub fn reserved_at_level(&self, level: usize) -> (Kbps, Kbps) {
        let mut up = 0;
        let mut dn = 0;
        for &n in &self.levels[level] {
            if let Some((u, d)) = self.uplink_used(n) {
                up += u;
                dn += d;
            }
        }
        (up, dn)
    }

    /// Total uplink capacity over all nodes of a level (single direction).
    pub fn capacity_at_level(&self, level: usize) -> Kbps {
        self.levels[level]
            .iter()
            .filter_map(|&n| self.uplink_capacity(n))
            .map(|(u, _)| u)
            .sum()
    }

    /// Check internal invariants; returns a description of the first
    /// violation. Intended for tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            if node.slots_used > node.slots_total {
                return Err(format!("{id}: slots_used > slots_total"));
            }
            if let Some(u) = node.up {
                if u.used_up > u.cap_up || u.used_dn > u.cap_dn {
                    return Err(format!("{id}: uplink over capacity"));
                }
            }
            let expect_free: u64 = if node.level == 0 {
                (node.slots_total - node.slots_used) as u64
            } else {
                self.children(id).map(|c| self.subtree_slots_free(c)).sum()
            };
            if node.sub_slots_free != expect_free {
                return Err(format!(
                    "{id}: sub_slots_free {} != recomputed {expect_free}",
                    node.sub_slots_free
                ));
            }
        }
        Ok(())
    }
}

fn apply_delta(used: Kbps, delta: i64, cap: Kbps, node: NodeId) -> Result<Kbps, TopologyError> {
    if delta >= 0 {
        let new = used
            .checked_add(delta as u64)
            .ok_or(TopologyError::InsufficientBandwidth { node })?;
        if new > cap {
            return Err(TopologyError::InsufficientBandwidth { node });
        }
        Ok(new)
    } else {
        used.checked_sub(delta.unsigned_abs())
            .ok_or(TopologyError::ReleaseUnderflow { node })
    }
}

/// Iterator over a node's ancestors (see [`Topology::path_to_root`]).
pub struct PathToRoot<'a> {
    topo: &'a Topology,
    next: Option<NodeId>,
}

impl Iterator for PathToRoot<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.topo.parent(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{gbps, mbps};

    fn paper() -> Topology {
        Topology::build(&TreeSpec::paper_datacenter())
    }

    #[test]
    fn paper_topology_shape() {
        let t = paper();
        assert_eq!(t.num_levels(), 4);
        assert_eq!(t.nodes_at_level(0).len(), 2048);
        assert_eq!(t.nodes_at_level(1).len(), 64);
        assert_eq!(t.nodes_at_level(2).len(), 8);
        assert_eq!(t.nodes_at_level(3).len(), 1);
        assert_eq!(t.servers().len(), 2048);
        assert_eq!(t.subtree_slots_free(t.root()), 2048 * 25);
        t.check_invariants().unwrap();
    }

    #[test]
    fn servers_under_is_contiguous_and_complete() {
        let t = paper();
        let tor = t.nodes_at_level(1)[0];
        assert_eq!(t.servers_under(tor).len(), 32);
        let agg = t.nodes_at_level(2)[3];
        assert_eq!(t.servers_under(agg).len(), 256);
        assert_eq!(t.servers_under(t.root()).len(), 2048);
        // Every server under the ToR has that ToR as an ancestor.
        for &s in t.servers_under(tor) {
            assert!(t.is_ancestor(tor, s));
        }
    }

    #[test]
    fn path_to_root_levels_ascend() {
        let t = paper();
        let s = t.servers()[100];
        let path: Vec<_> = t.path_to_root(s).collect();
        assert_eq!(path.len(), 4);
        assert_eq!(t.level(path[0]), 0);
        assert_eq!(t.level(path[3]), 3);
        assert_eq!(path[3], t.root());
    }

    #[test]
    fn slot_alloc_and_release() {
        let mut t = paper();
        let s = t.servers()[0];
        let tor = t.parent(s).unwrap();
        assert_eq!(t.slots_free(s), 25);
        t.alloc_slots(s, 10).unwrap();
        assert_eq!(t.slots_free(s), 15);
        assert_eq!(t.subtree_slots_free(tor), 32 * 25 - 10);
        assert_eq!(t.subtree_slots_free(t.root()), 2048 * 25 - 10);
        t.release_slots(s, 10).unwrap();
        assert_eq!(t.subtree_slots_free(t.root()), 2048 * 25);
        t.check_invariants().unwrap();
    }

    #[test]
    fn slot_overflow_and_underflow_rejected() {
        let mut t = paper();
        let s = t.servers()[0];
        assert!(matches!(
            t.alloc_slots(s, 26),
            Err(TopologyError::InsufficientSlots { .. })
        ));
        assert!(matches!(
            t.release_slots(s, 1),
            Err(TopologyError::ReleaseUnderflow { .. })
        ));
        // Failed ops leave state untouched.
        assert_eq!(t.slots_free(s), 25);
        t.check_invariants().unwrap();
    }

    #[test]
    fn slot_ops_on_switch_rejected() {
        let mut t = paper();
        let tor = t.nodes_at_level(1)[0];
        assert!(matches!(
            t.alloc_slots(tor, 1),
            Err(TopologyError::NotAServer { .. })
        ));
    }

    #[test]
    fn uplink_reserve_and_release() {
        let mut t = paper();
        let s = t.servers()[0];
        assert_eq!(t.uplink_capacity(s), Some((gbps(10.0), gbps(10.0))));
        t.adjust_uplink(s, mbps(500.0) as i64, mbps(300.0) as i64)
            .unwrap();
        assert_eq!(t.uplink_used(s), Some((mbps(500.0), mbps(300.0))));
        assert_eq!(
            t.uplink_avail(s),
            Some((gbps(10.0) - mbps(500.0), gbps(10.0) - mbps(300.0)))
        );
        t.adjust_uplink(s, -(mbps(500.0) as i64), -(mbps(300.0) as i64))
            .unwrap();
        assert_eq!(t.uplink_used(s), Some((0, 0)));
    }

    #[test]
    fn uplink_capacity_enforced_atomically() {
        let mut t = paper();
        let s = t.servers()[0];
        // Up fits, down does not => nothing applied.
        let r = t.adjust_uplink(s, 1, gbps(10.0) as i64 + 1);
        assert!(matches!(
            r,
            Err(TopologyError::InsufficientBandwidth { .. })
        ));
        assert_eq!(t.uplink_used(s), Some((0, 0)));
        // Underflow rejected.
        assert!(matches!(
            t.adjust_uplink(s, -1, 0),
            Err(TopologyError::ReleaseUnderflow { .. })
        ));
    }

    #[test]
    fn root_has_no_uplink() {
        let mut t = paper();
        let root = t.root();
        assert_eq!(t.uplink_capacity(root), None);
        assert!(t.adjust_uplink(root, 1, 1).is_err());
        assert_eq!(t.avail_to_root(root), (Kbps::MAX, Kbps::MAX));
    }

    #[test]
    fn avail_to_root_takes_path_minimum() {
        let mut t = paper();
        let s = t.servers()[0];
        let tor = t.parent(s).unwrap();
        let agg = t.parent(tor).unwrap();
        t.adjust_uplink(agg, gbps(79.0) as i64, 0).unwrap();
        let (up, dn) = t.avail_to_root(s);
        assert_eq!(up, gbps(1.0)); // agg uplink is now the bottleneck
        assert_eq!(dn, gbps(10.0)); // server NIC is the down bottleneck
    }

    #[test]
    fn reserved_at_level_sums() {
        let mut t = paper();
        let s0 = t.servers()[0];
        let s1 = t.servers()[1];
        t.adjust_uplink(s0, 1000, 500).unwrap();
        t.adjust_uplink(s1, 2000, 700).unwrap();
        assert_eq!(t.reserved_at_level(0), (3000, 1200));
        assert_eq!(t.reserved_at_level(1), (0, 0));
        assert_eq!(t.capacity_at_level(0), 2048 * gbps(10.0));
    }

    #[test]
    fn fig6_rack_topology() {
        let t = Topology::build(&TreeSpec::fig6_rack());
        assert_eq!(t.num_levels(), 2);
        assert_eq!(t.servers().len(), 4);
        assert_eq!(t.slots_total(t.servers()[0]), 2);
        assert_eq!(
            t.uplink_capacity(t.servers()[0]),
            Some((mbps(10.0), mbps(10.0)))
        );
    }

    #[test]
    fn children_iteration_matches_levels() {
        let t = paper();
        let mut all: Vec<NodeId> = Vec::new();
        let mut stack = vec![t.root()];
        while let Some(n) = stack.pop() {
            all.push(n);
            stack.extend(t.children(n));
        }
        assert_eq!(all.len(), 1 + 8 + 64 + 2048);
    }
}
