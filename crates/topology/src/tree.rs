//! The instantiated datacenter tree with resource accounting.

use crate::spec::TreeSpec;
use crate::units::Kbps;
use std::fmt;

/// Index of a node (server or switch) in a [`Topology`].
///
/// `NodeId`s are dense indices assigned in depth-first order at build time;
/// they are only meaningful for the topology that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors returned by resource mutations on a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// A slot allocation asked for more free slots than the server has.
    InsufficientSlots {
        /// The server whose slots were requested.
        server: NodeId,
        /// Slots requested.
        requested: u32,
        /// Slots actually free.
        free: u32,
    },
    /// A bandwidth reservation exceeded the uplink capacity in one direction.
    InsufficientBandwidth {
        /// The node whose uplink was targeted.
        node: NodeId,
    },
    /// A release underflowed (released more than was reserved/allocated) —
    /// this always indicates a caller bug, but is surfaced as an error so the
    /// ledger can never silently corrupt.
    ReleaseUnderflow {
        /// The node whose resources were targeted.
        node: NodeId,
    },
    /// The node kind was wrong for the operation (e.g. slot ops on a switch).
    NotAServer {
        /// The offending node.
        node: NodeId,
    },
    /// The target node is marked failed, so it cannot accept new resources.
    NodeFailed {
        /// The failed node.
        node: NodeId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InsufficientSlots {
                server,
                requested,
                free,
            } => write!(
                f,
                "server {server}: requested {requested} slots but only {free} free"
            ),
            TopologyError::InsufficientBandwidth { node } => {
                write!(f, "uplink of {node}: insufficient bandwidth")
            }
            TopologyError::ReleaseUnderflow { node } => {
                write!(f, "{node}: released more resources than were held")
            }
            TopologyError::NotAServer { node } => {
                write!(f, "{node} is not a server")
            }
            TopologyError::NodeFailed { node } => {
                write!(f, "{node} is failed")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Directional state of one uplink. `avail_*` are caches of `cap − used`,
/// kept in sync by [`Topology::adjust_uplink`] so the placement hot path
/// reads availability without re-deriving it.
#[derive(Debug, Clone, Copy)]
struct Uplink {
    cap_up: Kbps,
    cap_dn: Kbps,
    used_up: Kbps,
    used_dn: Kbps,
    avail_up: Kbps,
    avail_dn: Kbps,
}

#[derive(Debug, Clone)]
struct Node {
    level: u8,
    parent: Option<NodeId>,
    /// Children are contiguous: `children_start..children_start+children_len`.
    children_start: u32,
    children_len: u32,
    /// Range into the DFS-ordered server list covered by this subtree.
    servers_start: u32,
    servers_len: u32,
    /// Per-server slot accounting (zero for switches).
    slots_total: u32,
    slots_used: u32,
    /// Aggregate free slots in the whole subtree (equals the server's own
    /// free slots for servers).
    sub_slots_free: u64,
    sub_slots_total: u64,
    /// Uplink to the parent; `None` for the root.
    up: Option<Uplink>,
    /// Failure mask (servers only): a failed server contributes zero free
    /// slots to every subtree aggregate and rejects allocations.
    failed: bool,
    /// Health of the uplink as a fraction of its nominal (spec) capacity:
    /// 1.0 is healthy, 0.0 is dead. The uplink's `cap_*` always equal
    /// `round(nominal × link_fraction)`.
    link_fraction: f64,
}

/// A single-rooted datacenter tree with slot and bandwidth accounting.
///
/// The topology owns *physical* state only: how many VM slots each server has
/// free and how much bandwidth is reserved on each uplink in each direction.
/// What a reservation *means* (which tenant, which model) is tracked by the
/// placement layer in `cm-core`; the topology guarantees that capacities are
/// never exceeded and that releases never underflow.
///
/// All mutating operations are atomic: they either fully apply or leave the
/// topology untouched and return an error.
#[derive(Debug, Clone)]
pub struct Topology {
    spec: TreeSpec,
    nodes: Vec<Node>,
    /// Node ids grouped by level; `levels[0]` are the servers.
    levels: Vec<Vec<NodeId>>,
    /// All servers in depth-first order (so every subtree's servers form a
    /// contiguous slice of this vector).
    servers: Vec<NodeId>,
    root: NodeId,
    /// Per-subtree max-free-slots aggregate, flattened as
    /// `max_free[node_index * num_levels + target_level]`: the largest
    /// `sub_slots_free` of any descendant subtree rooted at `target_level`
    /// (the node's own `sub_slots_free` at its own level; 0 above it).
    /// Maintained incrementally by `alloc_slots`/`release_slots` along the
    /// parent path and used by [`Topology::descend_to_level`] to prune the
    /// candidate search.
    max_free: Vec<u64>,
    /// Per-level sum of reserved uplink bandwidth `(up, down)`, maintained
    /// by `adjust_uplink` so [`Topology::reserved_at_level`] is O(1).
    level_used: Vec<(Kbps, Kbps)>,
    /// Per-level sum of single-direction uplink capacity (fixed at build).
    level_cap: Vec<Kbps>,
    /// Per-level sum of `⌊(avail_up + avail_dn) / 2⌋` over the level's
    /// uplinks, maintained by `adjust_uplink`. Exactly the numerator of the
    /// §4.5 per-slot-availability pre-scan over a whole level, without the
    /// O(width) walk (per-node halving is preserved bit-for-bit).
    level_avail_half: Vec<u128>,
    /// Number of servers currently marked failed.
    num_failed_servers: u32,
    /// Number of uplinks currently running below nominal capacity.
    num_degraded_links: u32,
}

impl Topology {
    /// Instantiate a topology from a validated [`TreeSpec`].
    ///
    /// # Panics
    /// Panics if the spec fails [`TreeSpec::validate`].
    pub fn build(spec: &TreeSpec) -> Topology {
        spec.validate().expect("invalid TreeSpec");
        let num_levels = spec.num_levels();
        let mut topo = Topology {
            spec: spec.clone(),
            nodes: Vec::new(),
            levels: vec![Vec::new(); num_levels],
            servers: Vec::new(),
            root: NodeId(0),
            max_free: Vec::new(),
            level_used: vec![(0, 0); num_levels],
            level_cap: vec![0; num_levels],
            level_avail_half: vec![0; num_levels],
            num_failed_servers: 0,
            num_degraded_links: 0,
        };
        let root_level = (num_levels - 1) as u8;
        let root = topo.push_node(root_level, None);
        topo.root = root;
        topo.build_children(root);
        // Finalize subtree aggregates bottom-up (nodes were pushed parent
        // before children, so a reverse scan visits children first).
        for i in (0..topo.nodes.len()).rev() {
            let n = &topo.nodes[i];
            if n.level == 0 {
                let free = (n.slots_total - n.slots_used) as u64;
                let total = n.slots_total as u64;
                let node = &mut topo.nodes[i];
                node.sub_slots_free = free;
                node.sub_slots_total = total;
                node.servers_start = 0; // fixed below
                node.servers_len = 1;
            } else {
                let (cs, cl) = (n.children_start as usize, n.children_len as usize);
                let mut free = 0u64;
                let mut total = 0u64;
                for c in cs..cs + cl {
                    free += topo.nodes[c].sub_slots_free;
                    total += topo.nodes[c].sub_slots_total;
                }
                let node = &mut topo.nodes[i];
                node.sub_slots_free = free;
                node.sub_slots_total = total;
            }
        }
        // Assign server ranges with a DFS so that subtree servers are
        // contiguous in `servers`.
        topo.assign_server_ranges();
        // Finalize the max-free aggregates bottom-up and the per-level
        // capacity/availability caches.
        topo.max_free = vec![0; topo.nodes.len() * num_levels];
        for i in (0..topo.nodes.len()).rev() {
            let level = topo.nodes[i].level;
            topo.max_free[i * num_levels + level as usize] = topo.nodes[i].sub_slots_free;
            if level > 0 {
                let (cs, cl) = (
                    topo.nodes[i].children_start as usize,
                    topo.nodes[i].children_len as usize,
                );
                for tl in 0..level as usize {
                    let mut m = 0u64;
                    for c in cs..cs + cl {
                        m = m.max(topo.max_free[c * num_levels + tl]);
                    }
                    topo.max_free[i * num_levels + tl] = m;
                }
            }
        }
        for node in &topo.nodes {
            if let Some(u) = node.up {
                let l = node.level as usize;
                topo.level_cap[l] += u.cap_up;
                topo.level_avail_half[l] += (u.avail_up as u128 + u.avail_dn as u128) / 2;
            }
        }
        topo
    }

    fn push_node(&mut self, level: u8, parent: Option<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let slots = if level == 0 {
            self.spec.slots_per_server
        } else {
            0
        };
        let up = parent.map(|_| {
            let cap = self.spec.uplink_kbps[level as usize];
            Uplink {
                cap_up: cap,
                cap_dn: cap,
                used_up: 0,
                used_dn: 0,
                avail_up: cap,
                avail_dn: cap,
            }
        });
        self.nodes.push(Node {
            level,
            parent,
            children_start: 0,
            children_len: 0,
            servers_start: 0,
            servers_len: 0,
            slots_total: slots,
            slots_used: 0,
            sub_slots_free: 0,
            sub_slots_total: 0,
            up,
            failed: false,
            link_fraction: 1.0,
        });
        self.levels[level as usize].push(id);
        id
    }

    fn build_children(&mut self, parent: NodeId) {
        let level = self.nodes[parent.index()].level;
        if level == 0 {
            return;
        }
        let child_level = level - 1;
        // fanout_top_down[0] is the root's fanout; the root is at the highest
        // level, so index by distance from the top.
        let depth_from_top = (self.spec.num_levels() - 1) as u8 - level;
        let fanout = self.spec.fanout_top_down[depth_from_top as usize];
        let start = self.nodes.len() as u32;
        for _ in 0..fanout {
            self.push_node(child_level, Some(parent));
        }
        self.nodes[parent.index()].children_start = start;
        self.nodes[parent.index()].children_len = fanout;
        for i in 0..fanout {
            self.build_children(NodeId(start + i));
        }
    }

    fn assign_server_ranges(&mut self) {
        // Iterative DFS assigning contiguous server ranges.
        fn dfs(topo: &mut Topology, node: NodeId) -> (u32, u32) {
            if topo.nodes[node.index()].level == 0 {
                let start = topo.servers.len() as u32;
                topo.servers.push(node);
                let n = &mut topo.nodes[node.index()];
                n.servers_start = start;
                n.servers_len = 1;
                return (start, 1);
            }
            let (cs, cl) = {
                let n = &topo.nodes[node.index()];
                (n.children_start, n.children_len)
            };
            let mut start = u32::MAX;
            let mut len = 0;
            for c in cs..cs + cl {
                let (s, l) = dfs(topo, NodeId(c));
                if start == u32::MAX {
                    start = s;
                }
                len += l;
            }
            let n = &mut topo.nodes[node.index()];
            n.servers_start = start;
            n.servers_len = len;
            (start, len)
        }
        dfs(self, self.root);
    }

    // ------------------------------------------------------------------
    // Structure queries
    // ------------------------------------------------------------------

    /// The spec this topology was built from.
    pub fn spec(&self) -> &TreeSpec {
        &self.spec
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (servers and switches).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of levels (servers are level 0, root is `num_levels()-1`).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The level of a node (0 = server).
    #[inline]
    pub fn level(&self, n: NodeId) -> u8 {
        self.nodes[n.index()].level
    }

    /// Whether the node is a server (a leaf holding VM slots).
    #[inline]
    pub fn is_server(&self, n: NodeId) -> bool {
        self.nodes[n.index()].level == 0
    }

    /// All node ids at a given level.
    #[inline]
    pub fn nodes_at_level(&self, level: usize) -> &[NodeId] {
        &self.levels[level]
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// Children of a node, as a contiguous id range (empty for servers).
    #[inline]
    pub fn children(&self, n: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        let node = &self.nodes[n.index()];
        (node.children_start..node.children_start + node.children_len).map(NodeId)
    }

    /// All servers, in DFS order.
    #[inline]
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// The servers under a subtree, as a contiguous slice (DFS order).
    #[inline]
    pub fn servers_under(&self, n: NodeId) -> &[NodeId] {
        let node = &self.nodes[n.index()];
        let s = node.servers_start as usize;
        &self.servers[s..s + node.servers_len as usize]
    }

    /// The DFS-index range into [`Topology::servers`] covered by `n`'s
    /// subtree. Containment of a server's [`Topology::server_dfs_index`] in
    /// this range is an O(1) ancestor test, which the placement hot paths
    /// use instead of walking parent pointers.
    #[inline]
    pub fn server_range(&self, n: NodeId) -> std::ops::Range<u32> {
        let node = &self.nodes[n.index()];
        node.servers_start..node.servers_start + node.servers_len
    }

    /// The DFS index of a server within [`Topology::servers`].
    ///
    /// # Panics
    /// Debug-asserts that `server` is a server.
    #[inline]
    pub fn server_dfs_index(&self, server: NodeId) -> u32 {
        debug_assert_eq!(self.nodes[server.index()].level, 0);
        self.nodes[server.index()].servers_start
    }

    /// Iterator over `n`'s ancestors starting at `n` itself and ending at the
    /// root (inclusive).
    #[inline]
    pub fn path_to_root(&self, n: NodeId) -> PathToRoot<'_> {
        PathToRoot {
            topo: self,
            next: Some(n),
        }
    }

    /// Whether `ancestor` is on `path_to_root(n)` (a node is its own
    /// ancestor for this purpose).
    pub fn is_ancestor(&self, ancestor: NodeId, n: NodeId) -> bool {
        self.path_to_root(n).any(|a| a == ancestor)
    }

    /// Lowest common ancestor of two nodes: the deepest node whose subtree
    /// contains both (a node is its own ancestor, so `lca(n, n) == n`).
    /// O(depth); the single-rooted tree guarantees the walk meets at the
    /// root at the latest. The traffic engine's route cache keys server-pair
    /// paths by this node: the route is the up-chain of `a` to the LCA
    /// joined with the reversed down-chain of `b`.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.level(a) < self.level(b) {
            a = self.parent(a).expect("below the root, parent exists");
        }
        while self.level(b) < self.level(a) {
            b = self.parent(b).expect("below the root, parent exists");
        }
        while a != b {
            a = self.parent(a).expect("distinct nodes at the root level");
            b = self.parent(b).expect("distinct nodes at the root level");
        }
        a
    }

    // ------------------------------------------------------------------
    // Slot accounting
    // ------------------------------------------------------------------

    /// Total slots of a server.
    #[inline]
    pub fn slots_total(&self, server: NodeId) -> u32 {
        self.nodes[server.index()].slots_total
    }

    /// Free slots on a server (zero while the server is failed: failed
    /// capacity is invisible to every placer).
    #[inline]
    pub fn slots_free(&self, server: NodeId) -> u32 {
        let n = &self.nodes[server.index()];
        if n.failed {
            return 0;
        }
        n.slots_total - n.slots_used
    }

    /// Aggregate free slots in the subtree rooted at `n`.
    #[inline]
    pub fn subtree_slots_free(&self, n: NodeId) -> u64 {
        self.nodes[n.index()].sub_slots_free
    }

    /// Aggregate total slots in the subtree rooted at `n`.
    #[inline]
    pub fn subtree_slots_total(&self, n: NodeId) -> u64 {
        self.nodes[n.index()].sub_slots_total
    }

    /// VM slots currently allocated across the whole datacenter
    /// (total − free at the root); the slot half of a cluster-utilization
    /// report.
    #[inline]
    pub fn slots_in_use(&self) -> u64 {
        let r = self.root();
        self.subtree_slots_total(r) - self.subtree_slots_free(r)
    }

    /// Allocate `count` VM slots on a server.
    pub fn alloc_slots(&mut self, server: NodeId, count: u32) -> Result<(), TopologyError> {
        let node = &self.nodes[server.index()];
        if node.level != 0 {
            return Err(TopologyError::NotAServer { node: server });
        }
        if node.failed {
            return Err(TopologyError::NodeFailed { node: server });
        }
        let free = node.slots_total - node.slots_used;
        if count > free {
            return Err(TopologyError::InsufficientSlots {
                server,
                requested: count,
                free,
            });
        }
        self.nodes[server.index()].slots_used += count;
        let mut cur = Some(server);
        while let Some(c) = cur {
            self.nodes[c.index()].sub_slots_free -= count as u64;
            cur = self.nodes[c.index()].parent;
        }
        self.refresh_max_free(server);
        Ok(())
    }

    /// Re-derive the `max_free` aggregate along `server`'s parent path after
    /// its free-slot count changed.
    ///
    /// Each ancestor updates from the *delta* of its on-path child's row:
    /// an entry that rose becomes the new max outright; an entry that fell
    /// triggers a max-rescan over the children only when the child was the
    /// previous arg-max. The common case is O(depth) with no child scans at
    /// all — the same asymptotic shape as the `sub_slots_free` walk.
    fn refresh_max_free(&mut self, server: NodeId) {
        const MAX_DEPTH: usize = 16;
        let nl = self.levels.len();
        if nl > MAX_DEPTH {
            return self.refresh_max_free_full(server);
        }
        // `old_row`/`new_row` carry the on-path child's aggregate entries
        // before and after its update (a child of a level-l node is always
        // at level l−1, so its row covers every target level the parent
        // aggregates).
        let mut old_row = [0u64; MAX_DEPTH];
        let mut new_row = [0u64; MAX_DEPTH];
        let si = server.index() * nl;
        old_row[0] = self.max_free[si];
        new_row[0] = self.nodes[server.index()].sub_slots_free;
        self.max_free[si] = new_row[0];
        let mut cur = self.nodes[server.index()].parent;
        while let Some(p) = cur {
            let pi = p.index();
            let level = self.nodes[pi].level as usize;
            let base = pi * nl;
            let mut p_old = [0u64; MAX_DEPTH];
            let mut p_new = [0u64; MAX_DEPTH];
            p_old[level] = self.max_free[base + level];
            p_new[level] = self.nodes[pi].sub_slots_free;
            self.max_free[base + level] = p_new[level];
            for tl in 0..level {
                let oldv = self.max_free[base + tl];
                p_old[tl] = oldv;
                let newv = if new_row[tl] > oldv {
                    new_row[tl]
                } else if old_row[tl] == oldv && new_row[tl] < oldv {
                    // The on-path child held the max and dropped: rescan.
                    let (cs, cl) = (
                        self.nodes[pi].children_start as usize,
                        self.nodes[pi].children_len as usize,
                    );
                    let mut m = 0u64;
                    for c in cs..cs + cl {
                        m = m.max(self.max_free[c * nl + tl]);
                    }
                    m
                } else {
                    oldv
                };
                p_new[tl] = newv;
                self.max_free[base + tl] = newv;
            }
            old_row = p_old;
            new_row = p_new;
            cur = self.nodes[pi].parent;
        }
    }

    /// Full per-ancestor recomputation of `max_free` (fallback for trees
    /// deeper than the fast path's fixed buffers).
    fn refresh_max_free_full(&mut self, server: NodeId) {
        let nl = self.levels.len();
        self.max_free[server.index() * nl] = self.nodes[server.index()].sub_slots_free;
        let mut cur = self.nodes[server.index()].parent;
        while let Some(p) = cur {
            let pi = p.index();
            let level = self.nodes[pi].level as usize;
            let (cs, cl) = (
                self.nodes[pi].children_start as usize,
                self.nodes[pi].children_len as usize,
            );
            self.max_free[pi * nl + level] = self.nodes[pi].sub_slots_free;
            for tl in 0..level {
                let mut m = 0u64;
                for c in cs..cs + cl {
                    m = m.max(self.max_free[c * nl + tl]);
                }
                self.max_free[pi * nl + tl] = m;
            }
            cur = self.nodes[pi].parent;
        }
    }

    /// The largest `sub_slots_free` of any subtree rooted at `target_level`
    /// inside `n`'s subtree (0 when `target_level` is above `n`).
    #[inline]
    pub fn max_subtree_free_at(&self, n: NodeId, target_level: usize) -> u64 {
        if target_level >= self.levels.len() {
            return 0;
        }
        self.max_free[n.index() * self.levels.len() + target_level]
    }

    /// Release `count` previously-allocated VM slots on a server.
    pub fn release_slots(&mut self, server: NodeId, count: u32) -> Result<(), TopologyError> {
        let node = &self.nodes[server.index()];
        if node.level != 0 {
            return Err(TopologyError::NotAServer { node: server });
        }
        if count > node.slots_used {
            return Err(TopologyError::ReleaseUnderflow { node: server });
        }
        self.nodes[server.index()].slots_used -= count;
        // A failed server's effective contribution to the subtree
        // aggregates is zero and stays zero: releases (evacuating a dead
        // machine) only shrink its private `slots_used` ledger, and
        // `restore_server` re-publishes whatever is free at repair time.
        if !self.nodes[server.index()].failed {
            let mut cur = Some(server);
            while let Some(c) = cur {
                self.nodes[c.index()].sub_slots_free += count as u64;
                cur = self.nodes[c.index()].parent;
            }
            self.refresh_max_free(server);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bandwidth accounting
    // ------------------------------------------------------------------

    /// Uplink capacity of `n` in (up, down) direction; `None` for the root.
    #[inline]
    pub fn uplink_capacity(&self, n: NodeId) -> Option<(Kbps, Kbps)> {
        self.nodes[n.index()].up.map(|u| (u.cap_up, u.cap_dn))
    }

    /// Reserved bandwidth on `n`'s uplink in (up, down) direction.
    #[inline]
    pub fn uplink_used(&self, n: NodeId) -> Option<(Kbps, Kbps)> {
        self.nodes[n.index()].up.map(|u| (u.used_up, u.used_dn))
    }

    /// Available (unreserved) bandwidth on `n`'s uplink in (up, down)
    /// direction; `None` for the root.
    #[inline]
    pub fn uplink_avail(&self, n: NodeId) -> Option<(Kbps, Kbps)> {
        self.nodes[n.index()].up.map(|u| (u.avail_up, u.avail_dn))
    }

    /// Minimum available bandwidth along every uplink from `n` (inclusive)
    /// to the root, per direction. Returns `(Kbps::MAX, Kbps::MAX)` when `n`
    /// is the root (no links to cross).
    pub fn avail_to_root(&self, n: NodeId) -> (Kbps, Kbps) {
        let mut min_up = Kbps::MAX;
        let mut min_dn = Kbps::MAX;
        for a in self.path_to_root(n) {
            if let Some((au, ad)) = self.uplink_avail(a) {
                min_up = min_up.min(au);
                min_dn = min_dn.min(ad);
            }
        }
        (min_up, min_dn)
    }

    /// `FindLowestSubtree` by descent from the root: the subtree at exactly
    /// `level` with the most free slots (≥ `total_vms`) whose root path has
    /// at least `ext_demand` available bandwidth in both directions; ties
    /// break towards the smallest [`NodeId`].
    ///
    /// Equivalent to the linear scan over `nodes_at_level(level)` with
    /// `avail_to_root` per candidate — but walks root→level guided by the
    /// incrementally-maintained `max_free` aggregate while threading the
    /// running path-minimum of available bandwidth, so the common case costs
    /// O(branching × depth) instead of O(level-width × depth). Siblings are
    /// only revisited when the greedy child fails the bandwidth check or a
    /// tie must be broken (branch-and-bound, exact by construction:
    /// `max_free` is a sharp upper bound on any candidate below a child, and
    /// `NodeId` order agrees with left-to-right subtree order).
    pub fn descend_to_level(
        &self,
        level: usize,
        total_vms: u64,
        ext_demand: (Kbps, Kbps),
    ) -> Option<NodeId> {
        if level >= self.levels.len() {
            return None;
        }
        let mut best: Option<(u64, NodeId)> = None;
        self.descend_rec(
            self.root,
            level,
            total_vms,
            ext_demand,
            (Kbps::MAX, Kbps::MAX),
            &mut best,
        );
        best.map(|(_, n)| n)
    }

    fn descend_rec(
        &self,
        node: NodeId,
        level: usize,
        total_vms: u64,
        ext_demand: (Kbps, Kbps),
        path_min: (Kbps, Kbps),
        best: &mut Option<(u64, NodeId)>,
    ) {
        let ni = node.index();
        if self.nodes[ni].level as usize == level {
            let free = self.nodes[ni].sub_slots_free;
            let wins = free >= total_vms
                && best.is_none_or(|(bf, bid)| free > bf || (free == bf && node < bid));
            if wins {
                *best = Some((free, node));
            }
            return;
        }
        let (cs, cl) = (
            self.nodes[ni].children_start as usize,
            self.nodes[ni].children_len as usize,
        );
        let num_levels = self.levels.len();
        // Visit children best-bound-first (bound ties left-to-right). The
        // `max_free` aggregate is a sharp upper bound on any candidate's
        // free slots below a child, and every id below a child exceeds the
        // child's own id, so lexicographic (free desc, id asc) dominance
        // pruning against the incumbent is exact. Visited children are
        // tracked in bitmasks (no allocation); fanouts beyond 128 fall back
        // to plain id order, which drops the early `break` but stays exact.
        let ordered = cl <= 128;
        let mut visited = [0u64; 2];
        let mut order_pos = 0usize;
        loop {
            let picked = if ordered {
                let mut pick: Option<(u64, usize)> = None;
                for k in 0..cl {
                    if visited[k / 64] >> (k % 64) & 1 == 1 {
                        continue;
                    }
                    let bound = self.max_free[(cs + k) * num_levels + level];
                    if pick.is_none_or(|(pb, _)| bound > pb) {
                        pick = Some((bound, k));
                    }
                }
                match pick {
                    Some((bound, k)) => {
                        visited[k / 64] |= 1 << (k % 64);
                        Some((bound, k))
                    }
                    None => None,
                }
            } else if order_pos < cl {
                let k = order_pos;
                order_pos += 1;
                Some((self.max_free[(cs + k) * num_levels + level], k))
            } else {
                None
            };
            let Some((bound, k)) = picked else { break };
            let child = NodeId((cs + k) as u32);
            if bound < total_vms || best.is_some_and(|(bf, _)| bound < bf) {
                if ordered {
                    break; // remaining children have no larger bounds
                }
                continue;
            }
            if best.is_some_and(|(bf, bid)| bound == bf && bid < child) {
                continue; // incumbent wins any tie below this child
            }
            let (au, ad) = self.uplink_avail(child).expect("non-root child");
            let pm = (path_min.0.min(au), path_min.1.min(ad));
            if pm.0 < ext_demand.0 || pm.1 < ext_demand.1 {
                continue; // every candidate below shares this bottleneck
            }
            self.descend_rec(child, level, total_vms, ext_demand, pm, best);
        }
    }

    /// Atomically apply signed deltas to the reservation on `n`'s uplink.
    ///
    /// Fails (leaving state untouched) when a positive delta exceeds the
    /// remaining capacity in either direction, when a negative delta
    /// underflows the reservation, or when `n` is the root.
    pub fn adjust_uplink(
        &mut self,
        n: NodeId,
        delta_up: i64,
        delta_dn: i64,
    ) -> Result<(), TopologyError> {
        self.adjust_uplink_inner(n, delta_up, delta_dn, true)
    }

    /// [`Topology::adjust_uplink`] without the capacity ceiling (underflow
    /// is still checked). Only for restoring a reservation that was
    /// previously held: a fault can degrade a link's capacity below
    /// already-accepted reservations, and rollback/re-apply paths must
    /// still be able to return to that (previously legal) state. Placement
    /// paths must never reserve through this.
    pub fn force_adjust_uplink(
        &mut self,
        n: NodeId,
        delta_up: i64,
        delta_dn: i64,
    ) -> Result<(), TopologyError> {
        self.adjust_uplink_inner(n, delta_up, delta_dn, false)
    }

    fn adjust_uplink_inner(
        &mut self,
        n: NodeId,
        delta_up: i64,
        delta_dn: i64,
        enforce_cap: bool,
    ) -> Result<(), TopologyError> {
        let level = self.nodes[n.index()].level as usize;
        let node = &mut self.nodes[n.index()];
        let up = node
            .up
            .as_mut()
            .ok_or(TopologyError::InsufficientBandwidth { node: n })?;
        let cap_up = if enforce_cap { up.cap_up } else { Kbps::MAX };
        let cap_dn = if enforce_cap { up.cap_dn } else { Kbps::MAX };
        let new_up = apply_delta(up.used_up, delta_up, cap_up, n)?;
        let new_dn = apply_delta(up.used_dn, delta_dn, cap_dn, n)?;
        let old_half = (up.avail_up as u128 + up.avail_dn as u128) / 2;
        up.used_up = new_up;
        up.used_dn = new_dn;
        // A degraded link's cap can sit below reservations accepted before
        // the fault, so availability saturates at zero instead of asserting
        // `used ≤ cap`.
        up.avail_up = up.cap_up.saturating_sub(new_up);
        up.avail_dn = up.cap_dn.saturating_sub(new_dn);
        let new_half = (up.avail_up as u128 + up.avail_dn as u128) / 2;
        let lu = &mut self.level_used[level];
        lu.0 = (lu.0 as i64 + delta_up) as Kbps;
        lu.1 = (lu.1 as i64 + delta_dn) as Kbps;
        self.level_avail_half[level] = self.level_avail_half[level] - old_half + new_half;
        Ok(())
    }

    /// Sum of reserved uplink bandwidth over all nodes of a level, per
    /// direction. This is the paper's Table 1 metric ("aggregate bandwidth
    /// reserved on uplinks from the server, ToR, and agg switch levels").
    #[inline]
    pub fn reserved_at_level(&self, level: usize) -> (Kbps, Kbps) {
        self.level_used[level]
    }

    /// Total uplink capacity over all nodes of a level (single direction).
    #[inline]
    pub fn capacity_at_level(&self, level: usize) -> Kbps {
        self.level_cap[level]
    }

    /// Sum of `⌊(avail_up + avail_dn) / 2⌋` over every uplink of a level —
    /// the numerator of the §4.5 per-slot-availability test applied to a
    /// whole level, maintained incrementally (bit-identical to summing
    /// per-node halves).
    #[inline]
    pub fn avail_half_sum_at_level(&self, level: usize) -> u128 {
        self.level_avail_half[level]
    }

    // ------------------------------------------------------------------
    // Failure injection
    // ------------------------------------------------------------------

    /// Whether `n` is a failed server (always `false` for switches).
    #[inline]
    pub fn is_failed(&self, n: NodeId) -> bool {
        self.nodes[n.index()].failed
    }

    /// Health of `n`'s uplink as a fraction of nominal capacity (1.0 when
    /// healthy or for the root, 0.0 when dead).
    #[inline]
    pub fn link_health(&self, n: NodeId) -> f64 {
        self.nodes[n.index()].link_fraction
    }

    /// Whether any server is failed or any uplink degraded.
    #[inline]
    pub fn has_faults(&self) -> bool {
        self.num_failed_servers > 0 || self.num_degraded_links > 0
    }

    /// Number of currently failed servers.
    #[inline]
    pub fn num_failed_servers(&self) -> u32 {
        self.num_failed_servers
    }

    /// All currently failed servers, in DFS order.
    pub fn failed_servers(&self) -> Vec<NodeId> {
        self.servers
            .iter()
            .copied()
            .filter(|&s| self.nodes[s.index()].failed)
            .collect()
    }

    /// Mark a server failed: its free slots leave every subtree aggregate
    /// (so `descend_to_level` and the placers can no longer see them) and
    /// new allocations are rejected. Slots already allocated stay in the
    /// `slots_used` ledger so tenants can still release (evacuate) them.
    /// Returns `false` when the server was already failed (no-op).
    pub fn fail_server(&mut self, server: NodeId) -> Result<bool, TopologyError> {
        let node = &self.nodes[server.index()];
        if node.level != 0 {
            return Err(TopologyError::NotAServer { node: server });
        }
        if node.failed {
            return Ok(false);
        }
        let free = (node.slots_total - node.slots_used) as u64;
        self.nodes[server.index()].failed = true;
        self.num_failed_servers += 1;
        if free > 0 {
            let mut cur = Some(server);
            while let Some(c) = cur {
                self.nodes[c.index()].sub_slots_free -= free;
                cur = self.nodes[c.index()].parent;
            }
            self.refresh_max_free(server);
        }
        Ok(true)
    }

    /// Undo [`Topology::fail_server`]: whatever is free on the server at
    /// repair time re-enters the subtree aggregates. Returns `false` when
    /// the server was not failed (no-op).
    pub fn restore_server(&mut self, server: NodeId) -> Result<bool, TopologyError> {
        let node = &self.nodes[server.index()];
        if node.level != 0 {
            return Err(TopologyError::NotAServer { node: server });
        }
        if !node.failed {
            return Ok(false);
        }
        let free = (node.slots_total - node.slots_used) as u64;
        self.nodes[server.index()].failed = false;
        self.num_failed_servers -= 1;
        if free > 0 {
            let mut cur = Some(server);
            while let Some(c) = cur {
                self.nodes[c.index()].sub_slots_free += free;
                cur = self.nodes[c.index()].parent;
            }
            self.refresh_max_free(server);
        }
        Ok(true)
    }

    /// Set `n`'s uplink capacity to `round(nominal × fraction)` in both
    /// directions (0.0 kills the link, 1.0 restores it exactly).
    /// Reservations accepted before the fault are kept even when they now
    /// exceed the degraded cap — availability saturates at zero, so no
    /// *new* reservation can cross the link, and the per-level caches
    /// follow the degraded capacity.
    ///
    /// # Panics
    /// Panics when `fraction` is not within `[0, 1]`.
    pub fn degrade_link(&mut self, n: NodeId, fraction: f64) -> Result<(), TopologyError> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "link fraction must be within [0, 1]"
        );
        let level = self.nodes[n.index()].level as usize;
        let nominal = self.spec.uplink_kbps[level];
        let node = &mut self.nodes[n.index()];
        let up = node
            .up
            .as_mut()
            .ok_or(TopologyError::InsufficientBandwidth { node: n })?;
        let new_cap = (nominal as f64 * fraction).round() as Kbps;
        let old_cap = up.cap_up;
        let was_degraded = node.link_fraction != 1.0;
        let old_half = (up.avail_up as u128 + up.avail_dn as u128) / 2;
        up.cap_up = new_cap;
        up.cap_dn = new_cap;
        up.avail_up = new_cap.saturating_sub(up.used_up);
        up.avail_dn = new_cap.saturating_sub(up.used_dn);
        let new_half = (up.avail_up as u128 + up.avail_dn as u128) / 2;
        node.link_fraction = fraction;
        let is_degraded = fraction != 1.0;
        self.level_cap[level] = self.level_cap[level] - old_cap + new_cap;
        self.level_avail_half[level] = self.level_avail_half[level] - old_half + new_half;
        match (was_degraded, is_degraded) {
            (false, true) => self.num_degraded_links += 1,
            (true, false) => self.num_degraded_links -= 1,
            _ => {}
        }
        Ok(())
    }

    /// Restore `n`'s uplink to its nominal capacity (bit-exact: the cap
    /// comes back from the spec, not from un-scaling the degraded value).
    pub fn restore_link(&mut self, n: NodeId) -> Result<(), TopologyError> {
        self.degrade_link(n, 1.0)
    }

    /// Fail a whole fault domain: kill `n`'s uplink (capacity 0) and fail
    /// every server in its subtree. Returns the servers that were newly
    /// failed by this call (already-failed ones are skipped), which is what
    /// a recovery layer needs to find the tenants that just lost VMs.
    pub fn fail_domain(&mut self, n: NodeId) -> Result<Vec<NodeId>, TopologyError> {
        self.degrade_link(n, 0.0)?;
        let servers: Vec<NodeId> = self.servers_under(n).to_vec();
        let mut newly = Vec::new();
        for s in servers {
            if self.fail_server(s)? {
                newly.push(s);
            }
        }
        Ok(newly)
    }

    /// Undo [`Topology::fail_domain`]: restore the uplink to nominal and
    /// restore every failed server in the subtree (including any that were
    /// failed individually before the domain kill). Returns the servers
    /// that came back.
    pub fn restore_domain(&mut self, n: NodeId) -> Result<Vec<NodeId>, TopologyError> {
        self.restore_link(n)?;
        let servers: Vec<NodeId> = self.servers_under(n).to_vec();
        let mut restored = Vec::new();
        for s in servers {
            if self.restore_server(s)? {
                restored.push(s);
            }
        }
        Ok(restored)
    }

    /// Check internal invariants; returns a description of the first
    /// violation. Intended for tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut failed_servers = 0u32;
        let mut degraded_links = 0u32;
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            if node.failed {
                if node.level != 0 {
                    return Err(format!("{id}: failure mask set on a switch"));
                }
                failed_servers += 1;
            }
            if node.link_fraction != 1.0 {
                if node.up.is_none() {
                    return Err(format!("{id}: link fraction set on the root"));
                }
                degraded_links += 1;
            }
            if node.slots_used > node.slots_total {
                return Err(format!("{id}: slots_used > slots_total"));
            }
            if let Some(u) = node.up {
                // The cap must re-derive from the spec nominal and the
                // failure mask; `used` may exceed a degraded cap (old
                // reservations are kept) but never the nominal.
                let nominal = self.spec.uplink_kbps[node.level as usize];
                let expect_cap = (nominal as f64 * node.link_fraction).round() as Kbps;
                if u.cap_up != expect_cap || u.cap_dn != expect_cap {
                    return Err(format!(
                        "{id}: uplink cap {:?} != nominal × fraction {expect_cap}",
                        (u.cap_up, u.cap_dn)
                    ));
                }
                if u.used_up > nominal || u.used_dn > nominal {
                    return Err(format!("{id}: uplink over nominal capacity"));
                }
                if node.link_fraction == 1.0 && (u.used_up > u.cap_up || u.used_dn > u.cap_dn) {
                    return Err(format!("{id}: healthy uplink over capacity"));
                }
            }
            let expect_free: u64 = if node.level == 0 {
                if node.failed {
                    0
                } else {
                    (node.slots_total - node.slots_used) as u64
                }
            } else {
                self.children(id).map(|c| self.subtree_slots_free(c)).sum()
            };
            if node.sub_slots_free != expect_free {
                return Err(format!(
                    "{id}: sub_slots_free {} != recomputed {expect_free}",
                    node.sub_slots_free
                ));
            }
            if let Some(u) = node.up {
                if u.avail_up != u.cap_up.saturating_sub(u.used_up)
                    || u.avail_dn != u.cap_dn.saturating_sub(u.used_dn)
                {
                    return Err(format!("{id}: cached uplink avail out of sync"));
                }
            }
            // The max-free aggregate at every target level, against a
            // brute-force recomputation from the children.
            let num_levels = self.levels.len();
            for tl in 0..num_levels {
                let expect: u64 = if tl == node.level as usize {
                    node.sub_slots_free
                } else if tl < node.level as usize {
                    self.children(id)
                        .map(|c| self.max_free[c.index() * num_levels + tl])
                        .max()
                        .unwrap_or(0)
                } else {
                    0
                };
                let got = self.max_free[i * num_levels + tl];
                if got != expect {
                    return Err(format!(
                        "{id}: max_free[level {tl}] {got} != recomputed {expect}"
                    ));
                }
            }
        }
        // Per-level caches against brute-force sums over the level's nodes.
        for level in 0..self.levels.len() {
            let mut used = (0u64, 0u64);
            let mut cap = 0u64;
            let mut half = 0u128;
            for &n in &self.levels[level] {
                if let Some(u) = self.nodes[n.index()].up {
                    used.0 += u.used_up;
                    used.1 += u.used_dn;
                    cap += u.cap_up;
                    half += (u.avail_up as u128 + u.avail_dn as u128) / 2;
                }
            }
            if self.level_used[level] != used {
                return Err(format!(
                    "level {level}: cached reserved {:?} != recomputed {used:?}",
                    self.level_used[level]
                ));
            }
            if self.level_cap[level] != cap {
                return Err(format!("level {level}: cached capacity out of sync"));
            }
            if self.level_avail_half[level] != half {
                return Err(format!("level {level}: cached avail-half sum out of sync"));
            }
        }
        if failed_servers != self.num_failed_servers {
            return Err(format!(
                "failed-server count {} != recomputed {failed_servers}",
                self.num_failed_servers
            ));
        }
        if degraded_links != self.num_degraded_links {
            return Err(format!(
                "degraded-link count {} != recomputed {degraded_links}",
                self.num_degraded_links
            ));
        }
        Ok(())
    }
}

fn apply_delta(used: Kbps, delta: i64, cap: Kbps, node: NodeId) -> Result<Kbps, TopologyError> {
    if delta > 0 {
        let new = used
            .checked_add(delta as u64)
            .ok_or(TopologyError::InsufficientBandwidth { node })?;
        if new > cap {
            return Err(TopologyError::InsufficientBandwidth { node });
        }
        Ok(new)
    } else {
        // Only increases are cap-checked: a degraded link can hold
        // reservations above its current cap, and releasing (or leaving)
        // one direction while adjusting the other must still succeed.
        used.checked_sub(delta.unsigned_abs())
            .ok_or(TopologyError::ReleaseUnderflow { node })
    }
}

/// Iterator over a node's ancestors (see [`Topology::path_to_root`]).
pub struct PathToRoot<'a> {
    topo: &'a Topology,
    next: Option<NodeId>,
}

impl Iterator for PathToRoot<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.topo.parent(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{gbps, mbps};

    fn paper() -> Topology {
        Topology::build(&TreeSpec::paper_datacenter())
    }

    #[test]
    fn paper_topology_shape() {
        let t = paper();
        assert_eq!(t.num_levels(), 4);
        assert_eq!(t.nodes_at_level(0).len(), 2048);
        assert_eq!(t.nodes_at_level(1).len(), 64);
        assert_eq!(t.nodes_at_level(2).len(), 8);
        assert_eq!(t.nodes_at_level(3).len(), 1);
        assert_eq!(t.servers().len(), 2048);
        assert_eq!(t.subtree_slots_free(t.root()), 2048 * 25);
        t.check_invariants().unwrap();
    }

    #[test]
    fn servers_under_is_contiguous_and_complete() {
        let t = paper();
        let tor = t.nodes_at_level(1)[0];
        assert_eq!(t.servers_under(tor).len(), 32);
        let agg = t.nodes_at_level(2)[3];
        assert_eq!(t.servers_under(agg).len(), 256);
        assert_eq!(t.servers_under(t.root()).len(), 2048);
        // Every server under the ToR has that ToR as an ancestor.
        for &s in t.servers_under(tor) {
            assert!(t.is_ancestor(tor, s));
        }
    }

    #[test]
    fn path_to_root_levels_ascend() {
        let t = paper();
        let s = t.servers()[100];
        let path: Vec<_> = t.path_to_root(s).collect();
        assert_eq!(path.len(), 4);
        assert_eq!(t.level(path[0]), 0);
        assert_eq!(t.level(path[3]), 3);
        assert_eq!(path[3], t.root());
    }

    #[test]
    fn lca_matches_ancestor_structure() {
        let t = paper();
        let s0 = t.servers()[0];
        let s1 = t.servers()[1]; // same rack
        let s40 = t.servers()[40]; // same pod, different rack
        let s300 = t.servers()[300]; // different pod
        assert_eq!(t.lca(s0, s0), s0);
        assert_eq!(t.lca(s0, s1), t.parent(s0).unwrap());
        assert_eq!(t.lca(s0, s40), t.parent(t.parent(s0).unwrap()).unwrap());
        assert_eq!(t.lca(s0, s300), t.root());
        assert_eq!(t.lca(s0, s300), t.lca(s300, s0), "symmetric");
        // Mixed levels: a server against its own ToR and a foreign ToR.
        let tor = t.parent(s0).unwrap();
        assert_eq!(t.lca(s0, tor), tor);
        let other_tor = t.parent(s300).unwrap();
        assert_eq!(t.lca(s0, other_tor), t.root());
        // The LCA is an ancestor of both and the deepest such node: every
        // cross-check against the brute-force path intersection agrees.
        for &(x, y) in &[(s0, s1), (s0, s40), (s0, s300), (s1, s40)] {
            let px: Vec<_> = t.path_to_root(x).collect();
            let brute = t
                .path_to_root(y)
                .find(|n| px.contains(n))
                .expect("root is common");
            assert_eq!(t.lca(x, y), brute);
        }
    }

    #[test]
    fn slot_alloc_and_release() {
        let mut t = paper();
        let s = t.servers()[0];
        let tor = t.parent(s).unwrap();
        assert_eq!(t.slots_free(s), 25);
        t.alloc_slots(s, 10).unwrap();
        assert_eq!(t.slots_free(s), 15);
        assert_eq!(t.subtree_slots_free(tor), 32 * 25 - 10);
        assert_eq!(t.subtree_slots_free(t.root()), 2048 * 25 - 10);
        t.release_slots(s, 10).unwrap();
        assert_eq!(t.subtree_slots_free(t.root()), 2048 * 25);
        t.check_invariants().unwrap();
    }

    #[test]
    fn slot_overflow_and_underflow_rejected() {
        let mut t = paper();
        let s = t.servers()[0];
        assert!(matches!(
            t.alloc_slots(s, 26),
            Err(TopologyError::InsufficientSlots { .. })
        ));
        assert!(matches!(
            t.release_slots(s, 1),
            Err(TopologyError::ReleaseUnderflow { .. })
        ));
        // Failed ops leave state untouched.
        assert_eq!(t.slots_free(s), 25);
        t.check_invariants().unwrap();
    }

    #[test]
    fn slot_ops_on_switch_rejected() {
        let mut t = paper();
        let tor = t.nodes_at_level(1)[0];
        assert!(matches!(
            t.alloc_slots(tor, 1),
            Err(TopologyError::NotAServer { .. })
        ));
    }

    #[test]
    fn uplink_reserve_and_release() {
        let mut t = paper();
        let s = t.servers()[0];
        assert_eq!(t.uplink_capacity(s), Some((gbps(10.0), gbps(10.0))));
        t.adjust_uplink(s, mbps(500.0) as i64, mbps(300.0) as i64)
            .unwrap();
        assert_eq!(t.uplink_used(s), Some((mbps(500.0), mbps(300.0))));
        assert_eq!(
            t.uplink_avail(s),
            Some((gbps(10.0) - mbps(500.0), gbps(10.0) - mbps(300.0)))
        );
        t.adjust_uplink(s, -(mbps(500.0) as i64), -(mbps(300.0) as i64))
            .unwrap();
        assert_eq!(t.uplink_used(s), Some((0, 0)));
    }

    #[test]
    fn uplink_capacity_enforced_atomically() {
        let mut t = paper();
        let s = t.servers()[0];
        // Up fits, down does not => nothing applied.
        let r = t.adjust_uplink(s, 1, gbps(10.0) as i64 + 1);
        assert!(matches!(
            r,
            Err(TopologyError::InsufficientBandwidth { .. })
        ));
        assert_eq!(t.uplink_used(s), Some((0, 0)));
        // Underflow rejected.
        assert!(matches!(
            t.adjust_uplink(s, -1, 0),
            Err(TopologyError::ReleaseUnderflow { .. })
        ));
    }

    #[test]
    fn root_has_no_uplink() {
        let mut t = paper();
        let root = t.root();
        assert_eq!(t.uplink_capacity(root), None);
        assert!(t.adjust_uplink(root, 1, 1).is_err());
        assert_eq!(t.avail_to_root(root), (Kbps::MAX, Kbps::MAX));
    }

    #[test]
    fn avail_to_root_takes_path_minimum() {
        let mut t = paper();
        let s = t.servers()[0];
        let tor = t.parent(s).unwrap();
        let agg = t.parent(tor).unwrap();
        t.adjust_uplink(agg, gbps(79.0) as i64, 0).unwrap();
        let (up, dn) = t.avail_to_root(s);
        assert_eq!(up, gbps(1.0)); // agg uplink is now the bottleneck
        assert_eq!(dn, gbps(10.0)); // server NIC is the down bottleneck
    }

    #[test]
    fn reserved_at_level_sums() {
        let mut t = paper();
        let s0 = t.servers()[0];
        let s1 = t.servers()[1];
        t.adjust_uplink(s0, 1000, 500).unwrap();
        t.adjust_uplink(s1, 2000, 700).unwrap();
        assert_eq!(t.reserved_at_level(0), (3000, 1200));
        assert_eq!(t.reserved_at_level(1), (0, 0));
        assert_eq!(t.capacity_at_level(0), 2048 * gbps(10.0));
    }

    #[test]
    fn fig6_rack_topology() {
        let t = Topology::build(&TreeSpec::fig6_rack());
        assert_eq!(t.num_levels(), 2);
        assert_eq!(t.servers().len(), 4);
        assert_eq!(t.slots_total(t.servers()[0]), 2);
        assert_eq!(
            t.uplink_capacity(t.servers()[0]),
            Some((mbps(10.0), mbps(10.0)))
        );
    }

    /// Reference linear scan for descend_to_level equivalence checks.
    fn linear_find(t: &Topology, level: usize, vms: u64, ext: (Kbps, Kbps)) -> Option<NodeId> {
        if level >= t.num_levels() {
            return None;
        }
        let mut best: Option<(u64, NodeId)> = None;
        for &n in t.nodes_at_level(level) {
            let free = t.subtree_slots_free(n);
            if free < vms {
                continue;
            }
            let (up, dn) = t.avail_to_root(n);
            if up < ext.0 || dn < ext.1 {
                continue;
            }
            if best.is_none_or(|(bf, _)| free > bf) {
                best = Some((free, n));
            }
        }
        best.map(|(_, n)| n)
    }

    #[test]
    fn descend_matches_linear_scan_on_fresh_tree() {
        let t = paper();
        for level in 0..t.num_levels() {
            for vms in [0u64, 1, 25, 800, 2048 * 25, 2048 * 25 + 1] {
                assert_eq!(
                    t.descend_to_level(level, vms, (0, 0)),
                    linear_find(&t, level, vms, (0, 0)),
                    "level {level}, vms {vms}"
                );
            }
        }
        assert_eq!(t.descend_to_level(t.num_levels(), 1, (0, 0)), None);
    }

    #[test]
    fn descend_matches_linear_scan_under_load() {
        let mut t = paper();
        // Unbalance slots and bandwidth deterministically.
        for (i, &s) in t.servers().to_vec().iter().enumerate() {
            t.alloc_slots(s, (i % 26) as u32).unwrap();
            if i % 3 == 0 {
                t.adjust_uplink(s, gbps(9.0) as i64, gbps(2.0) as i64)
                    .unwrap();
            }
        }
        for (i, &tor) in t.nodes_at_level(1).to_vec().iter().enumerate() {
            if i % 2 == 0 {
                t.adjust_uplink(tor, gbps(70.0) as i64, gbps(10.0) as i64)
                    .unwrap();
            }
        }
        t.check_invariants().unwrap();
        for level in 0..t.num_levels() {
            for vms in [1u64, 10, 25, 200, 1000] {
                for ext in [(0, 0), (gbps(2.0), gbps(1.0)), (gbps(15.0), 0)] {
                    assert_eq!(
                        t.descend_to_level(level, vms, ext),
                        linear_find(&t, level, vms, ext),
                        "level {level}, vms {vms}, ext {ext:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn max_subtree_free_tracks_alloc_release() {
        let mut t = paper();
        let tor = t.nodes_at_level(1)[0];
        assert_eq!(t.max_subtree_free_at(t.root(), 0), 25);
        assert_eq!(t.max_subtree_free_at(tor, 0), 25);
        assert_eq!(t.max_subtree_free_at(tor, 1), 32 * 25);
        assert_eq!(t.max_subtree_free_at(tor, 2), 0, "level above the node");
        // Drain one whole rack; its ToR aggregate drops, the root's doesn't.
        for &s in t.servers_under(tor).to_vec().iter() {
            t.alloc_slots(s, 25).unwrap();
        }
        assert_eq!(t.max_subtree_free_at(tor, 0), 0);
        assert_eq!(t.max_subtree_free_at(t.root(), 0), 25);
        assert_eq!(t.max_subtree_free_at(t.root(), 1), 32 * 25);
        t.check_invariants().unwrap();
    }

    #[test]
    fn level_caches_match_brute_force() {
        let mut t = paper();
        let s0 = t.servers()[0];
        let tor = t.parent(s0).unwrap();
        t.adjust_uplink(s0, 1001, 500).unwrap();
        t.adjust_uplink(tor, 777, 333).unwrap();
        // check_invariants recomputes all three caches brute-force.
        t.check_invariants().unwrap();
        assert_eq!(t.reserved_at_level(0), (1001, 500));
        assert_eq!(t.reserved_at_level(1), (777, 333));
        assert_eq!(t.capacity_at_level(1), 64 * gbps(80.0));
        let expect_half: u128 = t
            .nodes_at_level(0)
            .iter()
            .filter_map(|&n| t.uplink_avail(n))
            .map(|(u, d)| (u as u128 + d as u128) / 2)
            .sum();
        assert_eq!(t.avail_half_sum_at_level(0), expect_half);
    }

    #[test]
    fn fail_and_restore_server_round_trips_exactly() {
        let mut t = paper();
        let s = t.servers()[0];
        let tor = t.parent(s).unwrap();
        t.alloc_slots(s, 10).unwrap();
        assert!(t.fail_server(s).unwrap());
        assert!(!t.fail_server(s).unwrap(), "second fail is a no-op");
        assert!(t.is_failed(s) && t.has_faults());
        // Free capacity vanished from every aggregate and new allocations
        // are rejected; the 10 allocated slots stay on the books.
        assert_eq!(t.slots_free(s), 0);
        assert_eq!(t.subtree_slots_free(tor), 31 * 25);
        assert_eq!(t.max_subtree_free_at(tor, 0), 25);
        assert!(matches!(
            t.alloc_slots(s, 1),
            Err(TopologyError::NodeFailed { .. })
        ));
        t.check_invariants().unwrap();
        // Evacuating the dead server releases privately (aggregates see
        // nothing until repair).
        t.release_slots(s, 10).unwrap();
        assert_eq!(t.subtree_slots_free(tor), 31 * 25);
        t.check_invariants().unwrap();
        assert!(t.restore_server(s).unwrap());
        assert!(!t.restore_server(s).unwrap());
        assert_eq!(t.slots_free(s), 25);
        assert_eq!(t.subtree_slots_free(t.root()), 2048 * 25);
        assert!(!t.has_faults());
        t.check_invariants().unwrap();
    }

    #[test]
    fn degrade_link_keeps_old_reservations_but_blocks_new_ones() {
        let mut t = paper();
        let s = t.servers()[0];
        t.adjust_uplink(s, gbps(5.0) as i64, gbps(5.0) as i64)
            .unwrap();
        t.degrade_link(s, 0.25).unwrap();
        assert_eq!(t.uplink_capacity(s), Some((gbps(2.5), gbps(2.5))));
        assert_eq!(t.uplink_used(s), Some((gbps(5.0), gbps(5.0))));
        assert_eq!(t.uplink_avail(s), Some((0, 0)));
        assert_eq!(t.link_health(s), 0.25);
        t.check_invariants().unwrap();
        // New reservations bounce; releases still work.
        assert!(t.adjust_uplink(s, 1, 0).is_err());
        t.adjust_uplink(s, -(gbps(5.0) as i64), -(gbps(5.0) as i64))
            .unwrap();
        // Restoring a previously-held reservation is allowed through the
        // force path even though it exceeds the degraded cap.
        assert!(t.adjust_uplink(s, gbps(5.0) as i64, 0).is_err());
        t.force_adjust_uplink(s, gbps(5.0) as i64, 0).unwrap();
        t.check_invariants().unwrap();
        t.restore_link(s).unwrap();
        assert_eq!(t.uplink_capacity(s), Some((gbps(10.0), gbps(10.0))));
        assert_eq!(t.uplink_avail(s), Some((gbps(5.0), gbps(10.0))));
        assert!(!t.has_faults());
        t.check_invariants().unwrap();
    }

    #[test]
    fn failed_domain_is_invisible_to_descend() {
        let mut t = paper();
        let tor = t.nodes_at_level(1)[0];
        let newly = t.fail_domain(tor).unwrap();
        assert_eq!(newly.len(), 32);
        assert_eq!(t.failed_servers(), newly);
        assert_eq!(t.subtree_slots_free(tor), 0);
        assert_eq!(t.subtree_slots_free(t.root()), (2048 - 32) * 25);
        assert_eq!(t.uplink_capacity(tor), Some((0, 0)));
        t.check_invariants().unwrap();
        // Placement search never lands inside the dead domain, and still
        // agrees with the brute-force reference.
        for level in 0..t.num_levels() {
            let found = t.descend_to_level(level, 25, (0, 0));
            assert_eq!(found, linear_find(&t, level, 25, (0, 0)));
            if let Some(n) = found {
                assert!(!t.is_ancestor(tor, n));
            }
        }
        let restored = t.restore_domain(tor).unwrap();
        assert_eq!(restored.len(), 32);
        assert_eq!(t.subtree_slots_free(t.root()), 2048 * 25);
        assert!(!t.has_faults());
        t.check_invariants().unwrap();
    }

    #[test]
    fn children_iteration_matches_levels() {
        let t = paper();
        let mut all: Vec<NodeId> = Vec::new();
        let mut stack = vec![t.root()];
        while let Some(n) = stack.pop() {
            all.push(n);
            stack.extend(t.children(n));
        }
        assert_eq!(all.len(), 1 + 8 + 64 + 2048);
    }
}
