//! Pod-level partitioning of a [`Topology`] for concurrent admission.
//!
//! The concurrent engine in `cm-core` shards the datacenter into the
//! subtrees rooted at a configurable level (the "pods": on the paper
//! datacenter, the 8 aggregation-switch subtrees of 256 servers each).
//! Every node at or below the shard level belongs to exactly one shard;
//! nodes strictly above it (the root on the paper tree) belong to none and
//! form the shared *core*. A tenant whose placement and reservations stay
//! inside one shard conflicts only with commits that touched that shard,
//! which is what lets speculative placements of different pods validate
//! independently.
//!
//! `PodPartition` is a read-only index over the topology's structure: shard
//! membership never changes after build, so it can be shared freely across
//! worker threads (`&self` everywhere, no interior mutability).

use crate::tree::{NodeId, Topology};

/// Index of a shard (a subtree rooted at the partition level).
pub type ShardId = u32;

/// Sentinel stored for nodes above the partition level.
const NO_SHARD: u32 = u32::MAX;

/// A static pod-level partition of a topology (see the module docs).
#[derive(Debug, Clone)]
pub struct PodPartition {
    level: u8,
    /// Per node index: the shard it belongs to, or `NO_SHARD` above the
    /// partition level.
    shard_of: Vec<u32>,
    /// Shard roots (the nodes at the partition level), ascending id.
    roots: Vec<NodeId>,
}

impl PodPartition {
    /// Partition `topo` at `level` (each node at that level roots one
    /// shard). `level` must be below the root so that at least one shared
    /// core node exists; partitioning at the server level is allowed but
    /// pointless.
    ///
    /// # Panics
    /// Panics if `level >= topo.num_levels() - 1`.
    pub fn new(topo: &Topology, level: u8) -> PodPartition {
        assert!(
            (level as usize) < topo.num_levels() - 1,
            "shard level {level} must be below the root"
        );
        let roots: Vec<NodeId> = topo.nodes_at_level(level as usize).to_vec();
        let mut shard_of = vec![NO_SHARD; topo.num_nodes()];
        for (s, &root) in roots.iter().enumerate() {
            mark_subtree(topo, root, s as u32, &mut shard_of);
        }
        PodPartition {
            level,
            shard_of,
            roots,
        }
    }

    /// The default partition level for a topology: directly below the root,
    /// so the shared core is exactly the root's child uplinks (the paper
    /// datacenter's 8 pod uplinks).
    pub fn default_level(topo: &Topology) -> u8 {
        (topo.num_levels() - 2) as u8
    }

    /// The partition level.
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.roots.len()
    }

    /// The shard roots, ascending id.
    #[inline]
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// The shard containing `n`, or `None` when `n` lies above the
    /// partition level (in the shared core).
    #[inline]
    pub fn shard_of(&self, n: NodeId) -> Option<ShardId> {
        match self.shard_of[n.index()] {
            NO_SHARD => None,
            s => Some(s),
        }
    }
}

fn mark_subtree(topo: &Topology, node: NodeId, shard: u32, out: &mut [u32]) {
    out[node.index()] = shard;
    // Children ids are contiguous; recursion depth is bounded by tree depth.
    for c in topo.children(node) {
        mark_subtree(topo, c, shard, out);
    }
}

/// A set of shards touched by a placement or commit, with an explicit
/// "touched the shared core / everything" state for placements that escape
/// a single pod. Backed by a bitmask for up to 128 shards; larger
/// partitions degrade to the conservative `All` state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSet {
    /// Touches only the shards in the mask.
    Mask(u128),
    /// Touches the shared core or an unknown set: conflicts with everything.
    All,
}

impl ShardSet {
    /// The empty set.
    pub const EMPTY: ShardSet = ShardSet::Mask(0);

    /// Insert a shard (degrading to [`ShardSet::All`] past 128 shards).
    pub fn insert(&mut self, shard: ShardId) {
        if let ShardSet::Mask(m) = self {
            if shard < 128 {
                *m |= 1u128 << shard;
            } else {
                *self = ShardSet::All;
            }
        }
    }

    /// Insert the shard of `n` under `part`, degrading to `All` for core
    /// nodes.
    pub fn insert_node(&mut self, part: &PodPartition, n: NodeId) {
        match part.shard_of(n) {
            Some(s) => self.insert(s),
            None => *self = ShardSet::All,
        }
    }

    /// Whether the two sets share a shard (or either is `All`).
    pub fn intersects(&self, other: &ShardSet) -> bool {
        match (self, other) {
            (ShardSet::All, _) | (_, ShardSet::All) => true,
            (ShardSet::Mask(a), ShardSet::Mask(b)) => a & b != 0,
        }
    }

    /// Whether the set is exactly one shard (the single-pod fast path).
    pub fn is_single(&self) -> bool {
        matches!(self, ShardSet::Mask(m) if m.count_ones() == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TreeSpec;

    #[test]
    fn paper_partition_shapes() {
        let t = Topology::build(&TreeSpec::paper_datacenter());
        let p = PodPartition::new(&t, PodPartition::default_level(&t));
        assert_eq!(p.level(), 2);
        assert_eq!(p.num_shards(), 8);
        // The root is core; every pod root maps to its own shard.
        assert_eq!(p.shard_of(t.root()), None);
        for (i, &r) in p.roots().iter().enumerate() {
            assert_eq!(p.shard_of(r), Some(i as u32));
        }
        // Every server belongs to the shard of its pod ancestor.
        for &s in t.servers() {
            let pod = t
                .path_to_root(s)
                .find(|&a| t.level(a) == 2)
                .expect("server has a pod ancestor");
            assert_eq!(p.shard_of(s), p.shard_of(pod));
        }
    }

    #[test]
    fn shard_sets_track_conflicts() {
        let t = Topology::build(&TreeSpec::paper_datacenter());
        let p = PodPartition::new(&t, 2);
        let mut a = ShardSet::EMPTY;
        a.insert_node(&p, t.servers()[0]); // pod 0
        let mut b = ShardSet::EMPTY;
        b.insert_node(&p, t.servers()[2047]); // pod 7
        assert!(!a.intersects(&b));
        assert!(a.is_single() && b.is_single());
        b.insert_node(&p, t.servers()[0]);
        assert!(a.intersects(&b));
        assert!(!b.is_single());
        let mut c = ShardSet::EMPTY;
        c.insert_node(&p, t.root());
        assert_eq!(c, ShardSet::All);
        assert!(c.intersects(&a) && ShardSet::EMPTY.intersects(&c));
        assert!(!ShardSet::EMPTY.intersects(&a));
    }

    #[test]
    #[should_panic(expected = "below the root")]
    fn partition_at_root_rejected() {
        let t = Topology::build(&TreeSpec::paper_datacenter());
        let _ = PodPartition::new(&t, 3);
    }
}
