//! Offline stand-in for the subset of the `proptest` API this workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `boxed`, tuple and `Vec` composition, [`Just`],
//! `any::<T>()`, `prop::collection::vec`, `prop::sample::select`, the
//! [`proptest!`] macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation (see the workspace README). Each
//! property runs the configured number of cases against a deterministic
//! per-test RNG; failures panic with the offending assertion. There is no
//! shrinking and no persisted failure seeds — swap the
//! `[workspace.dependencies]` entry back to the crates.io `proptest` for
//! those; no test code needs to change.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Create an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample empty range");
        self.next_u64() % n
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

trait DynSample<T> {
    fn dyn_sample(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynSample<S::Value> for S {
    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Type-erased strategy (output of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn DynSample<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.dyn_sample(rng)
    }
}

/// A strategy that always yields the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // i128 arithmetic so ranges with negative bounds (any
                // integer type up to 64 bits) span correctly.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1).min(u64::MAX as i128) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Types usable with [`any`].
pub trait Arbitrary {
    /// Build a uniform value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Arbitrary for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Arbitrary for u16 {
    fn from_bits(bits: u64) -> u16 {
        bits as u16
    }
}

impl Arbitrary for u32 {
    fn from_bits(bits: u64) -> u32 {
        bits as u32
    }
}

impl Arbitrary for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Arbitrary for usize {
    fn from_bits(bits: u64) -> usize {
        bits as usize
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::from_bits(rng.next_u64())
    }
}

/// A uniform strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy combinator modules (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Element count for [`vec()`].
        pub struct SizeRange {
            lo: usize,
            hi_incl: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_incl: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_incl: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi_incl: n }
            }
        }

        /// Output of [`vec()`].
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_incl - self.size.lo + 1) as u64;
                let len = self.size.lo + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// A strategy for vectors of `elem` with a length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }

    /// Sampling from fixed option sets.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Output of [`select`].
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                let i = (rng.next_u64() % self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }

        /// A strategy that picks uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{any, prop, Any, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a property (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut seed: u64 = 0x70726f70_7465_7374;
            for b in stringify!($name).bytes() {
                seed = seed.wrapping_mul(31).wrapping_add(b as u64);
            }
            let mut rng = $crate::TestRng::new(seed);
            let strat = ($($strat,)+);
            for _case in 0..config.cases {
                let ($($arg,)+) = $crate::Strategy::sample(&strat, &mut rng);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_compose((a, b) in (0u32..10, 5usize..=6), flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            let _ = flag;
        }

        #[test]
        fn collections_and_select(v in prop::collection::vec(1u32..4, 2..5), x in prop::sample::select(vec![7u8, 9])) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| (1..4).contains(&e)));
            prop_assert!(x == 7 || x == 9);
        }
    }

    #[test]
    fn map_flat_map_boxed_chain() {
        let strat = (1u32..5)
            .prop_map(|n| n * 2)
            .prop_flat_map(|n| (Just(n), (0u32..=n).boxed()));
        let mut rng = crate::TestRng::new(1);
        for _ in 0..100 {
            let (n, k) = strat.sample(&mut rng);
            assert!(n % 2 == 0 && k <= n);
        }
    }
}
