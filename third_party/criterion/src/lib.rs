//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use: `Criterion`, benchmark groups, `BenchmarkId`, `Bencher`
//! with `iter`/`iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! The build environment has no access to crates.io, so this stub keeps
//! `cargo bench` runnable offline: every benchmark executes a warmup plus a
//! fixed number of timed samples and prints per-iteration mean and median
//! wall time. There is no statistical analysis, outlier rejection, or HTML
//! report — swap the `[workspace.dependencies]` entry back to the crates.io
//! `criterion` for real measurements; no bench code needs to change.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are grouped between setup calls (stub; the hint is
/// ignored, every iteration gets a fresh setup).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing driver handed to every benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup round to fault in caches before timing.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` with a fresh un-timed `setup` product per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let median = samples[samples.len() / 2];
    println!(
        "{name:<40} mean {mean:>12.3?}   median {median:>12.3?}   ({} samples)",
        samples.len()
    );
}

/// Top-level benchmark driver (stub of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Parse CLI arguments. Like real criterion, `--test` switches to test
    /// mode: every benchmark routine runs exactly once, untimed — the CI
    /// smoke mode that keeps benches compiling *and running* without the
    /// measurement cost. Other arguments are ignored.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: if self.test_mode { 0 } else { self.sample_size },
        };
        f(&mut b);
        if self.test_mode {
            println!("{name:<40} ok (test mode)");
        } else {
            report(name, &mut b.samples);
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Print the closing summary (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: if self.criterion.test_mode {
                0
            } else {
                self.sample_size.unwrap_or(self.criterion.sample_size)
            },
        };
        f(&mut b, input);
        if self.criterion.test_mode {
            println!("{}/{id:<32} ok (test mode)", self.name);
        } else {
            report(&format!("{}/{}", self.name, id), &mut b.samples);
        }
        self
    }

    /// Run one benchmark without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: if self.criterion.test_mode {
                0
            } else {
                self.sample_size.unwrap_or(self.criterion.sample_size)
            },
        };
        f(&mut b);
        if self.criterion.test_mode {
            println!("{}/{id:<32} ok (test mode)", self.name);
        } else {
            report(&format!("{}/{}", self.name, id), &mut b.samples);
        }
        self
    }

    /// Close the group.
    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
