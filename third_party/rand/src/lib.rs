//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over integer and float ranges.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation instead (see the workspace README).
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically sound for the simulator's sampling needs, but
//! **not** cryptographically secure (the real `StdRng` is ChaCha-based).
//! Swap the `[workspace.dependencies]` entry back to the crates.io `rand`
//! when network access is available; no call sites need to change.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (stub of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from the given range. Panics on an empty range,
    /// like the real `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform sample of a full-range value (stub of `Rng::random`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }
}

/// Types samplable by [`Rng::random`].
pub trait Standard {
    /// Build a uniform value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can produce a uniform sample (stub of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64 (offline stand-in for
    /// `rand::rngs::StdRng`; deterministic and statistically sound, not
    /// cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(2..=20u32);
            assert!((2..=20).contains(&x));
            let y: usize = rng.random_range(0..13usize);
            assert!(y < 13);
            let f: f64 = rng.random_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
